"""Versioned request envelopes and authenticated callers (the v2 API).

The v1 protocol authenticates *users* (that is the paper's whole point) but
not *callers*: anyone who can reach the socket can enroll, roll back or
retrain anyone.  The v2 API wraps every protocol request in a frozen
:class:`Envelope` carrying:

* ``api_version`` — the protocol revision the caller speaks;
* ``request_id`` — echoed on the response, so concurrent callers can
  correlate answers (and retries can be detected in logs);
* ``idempotency_key`` — optional; two envelopes from one caller sharing a
  key execute the operation once, the second receives the recorded
  response (``replayed=True``), which makes non-idempotent operations
  (enroll, drift retrain) safe to retry over a flaky transport;
* ``api_key`` — the caller credential a :class:`CallerRegistry` authorizes
  against per-caller *scopes*.

Two scopes split the API into the planes production serving systems use:
``data:write`` admits the hot device path (enroll / authenticate /
drift-report — the :class:`~repro.service.gateway.DataPlane`), ``admin``
admits the rare operator path (rollback / snapshot / eviction / detector
training — the :class:`~repro.service.gateway.ControlPlane`).  The
:class:`EnvelopeProcessor` authorizes every envelope *before* dispatch: a
missing, unknown or under-scoped key yields a typed :class:`DeniedResponse`
(mapped to HTTP 401/403 by the transport) and the wrapped request never
reaches the gateway.

:class:`EnvelopeChannel` adapts a processor to the
:class:`~repro.service.fleet.RequestChannel` protocol, so the fleet
simulator (and any in-process caller) speaks v2 envelopes without a socket.
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import threading
import uuid

try:  # POSIX advisory file locks back the cross-process quota store.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from time import monotonic, perf_counter
from typing import Any, Mapping, Sequence

from repro.service.frontend import ServiceFrontend
from repro.service.tracing import SPAN_ADMISSION, TraceContext
from repro.service.protocol import (
    ErrorResponse,
    Request,
    Response,
    ThrottledResponse,
    is_control_plane,
    is_data_plane,
    request_from_payload,
    request_kind,
    request_to_payload,
    response_from_payload,
    response_to_payload,
)
from repro.service.telemetry import TelemetryHub
from repro.utils import serialization

# --------------------------------------------------------------------- #
# scopes and typed error codes
# --------------------------------------------------------------------- #

#: The protocol revision this module implements.
API_VERSION = 2

#: Scope admitting the hot data plane (enroll / authenticate / drift).
SCOPE_DATA_WRITE = "data:write"

#: Scope admitting the control plane (rollback / snapshot / evict / train).
SCOPE_ADMIN = "admin"

#: Every scope the caller registry accepts.
KNOWN_SCOPES = frozenset({SCOPE_DATA_WRITE, SCOPE_ADMIN})

#: Typed caller-rejection codes (the transport maps them to HTTP statuses).
CODE_MISSING_KEY = "missing-api-key"
CODE_UNKNOWN_KEY = "unknown-api-key"
CODE_INSUFFICIENT_SCOPE = "insufficient-scope"
CODE_UNSUPPORTED_VERSION = "unsupported-api-version"
CODE_WRONG_PLANE = "wrong-plane"

#: HTTP status for each typed rejection code: missing/unknown credentials
#: are 401 (unauthenticated), a known caller without the required scope —
#: or on the wrong plane — is 403 (forbidden), an unsupported protocol
#: revision is the caller's own 400.
STATUS_BY_CODE = {
    CODE_MISSING_KEY: 401,
    CODE_UNKNOWN_KEY: 401,
    CODE_INSUFFICIENT_SCOPE: 403,
    CODE_WRONG_PLANE: 403,
    CODE_UNSUPPORTED_VERSION: 400,
}


def new_request_id() -> str:
    """A fresh unique request id (32 hex chars)."""
    return uuid.uuid4().hex


# --------------------------------------------------------------------- #
# envelope types
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class Envelope:
    """One versioned, authenticated protocol request.

    ``eq=False`` because the wrapped request may hold NumPy arrays (see
    :class:`~repro.service.protocol.EnrollRequest`).

    Attributes
    ----------
    request:
        The wrapped :mod:`repro.service.protocol` request.
    api_key:
        Caller credential; ``None`` is rejected with a typed 401.
    request_id:
        Correlation id echoed by the response (generated when omitted).
    idempotency_key:
        Optional replay guard: envelopes from one caller sharing a key
        execute once.
    api_version:
        The protocol revision the caller speaks (currently only ``2``).
    trace_id:
        Optional client-supplied trace id: a caller that wants its request
        traced end-to-end supplies one here (or via the ``X-Trace-Id``
        header on HTTP) and gets it echoed on the sealed response.
    """

    request: Request
    api_key: str | None = None
    request_id: str = field(default_factory=new_request_id)
    idempotency_key: str | None = None
    api_version: int = API_VERSION
    trace_id: str | None = None

    def __post_init__(self) -> None:
        request_kind(self.request)  # raises TypeError on non-protocol input
        if not isinstance(self.request_id, str) or not self.request_id:
            raise ValueError(
                f"request_id must be a non-empty string, got {self.request_id!r}"
            )
        if not isinstance(self.api_version, int) or isinstance(self.api_version, bool):
            raise ValueError(
                f"api_version must be an int, got {self.api_version!r}"
            )


@dataclass(frozen=True)
class DeniedResponse:
    """A request rejected before dispatch: the caller was not authorized.

    Unlike :class:`~repro.service.protocol.ErrorResponse` this is not a
    failure of the operation — the operation never ran.  ``code`` is one of
    the typed rejection codes above; the transport maps it to 401/403/400
    via :data:`STATUS_BY_CODE`.
    """

    request_kind: str
    code: str
    message: str
    required_scope: str | None = None

    @property
    def http_status(self) -> int:
        """The HTTP status this rejection answers with."""
        return STATUS_BY_CODE.get(self.code, 403)


@dataclass(frozen=True, eq=False)
class SealedResponse:
    """A response sealed back into the v2 envelope contract.

    ``eq=False`` because the wrapped response may hold NumPy arrays.

    Attributes
    ----------
    response:
        The inner protocol response — or a :class:`DeniedResponse` when
        the envelope never passed authorization.
    request_id:
        Echo of the originating envelope's ``request_id``.
    api_version:
        The protocol revision of the exchange.
    caller_id:
        The authorized caller (``None`` when the envelope was denied).
    replayed:
        True when this response was served from the idempotency record of
        an earlier envelope sharing the same key.
    trace_id:
        The trace covering this exchange, echoed so the caller can match
        its own records against the server-side trace events (``None``
        when the request was untraced).
    """

    response: Response | DeniedResponse
    request_id: str
    api_version: int = API_VERSION
    caller_id: str | None = None
    replayed: bool = False
    trace_id: str | None = None

    @property
    def denied(self) -> bool:
        """True when the envelope was rejected before dispatch."""
        return isinstance(self.response, DeniedResponse)


# --------------------------------------------------------------------- #
# caller registry
# --------------------------------------------------------------------- #


#: The typed :class:`~repro.service.protocol.ThrottledResponse` reason a
#: per-caller rate limit rejects with (the transport maps it to HTTP 429
#: with a ``Retry-After`` header, exactly like queue-full throttling).
REASON_RATE_LIMITED = "rate-limited"

#: The typed throttle reason for a batch/frame charging more tokens than
#: the caller's bucket can ever hold: waiting cannot help — the caller
#: must split the batch (or the operator must raise the burst).
REASON_BATCH_EXCEEDS_BURST = "batch-exceeds-burst"


class TokenBucket:
    """Thread-safe token bucket: ``rate_per_s`` refill up to ``burst``.

    The standard shape for per-caller quotas: sustained request rate is
    bounded by the refill rate while short bursts up to the bucket size
    pass untouched.  Time comes from the monotonic clock, so wall-clock
    jumps cannot mint or destroy tokens.

    Parameters
    ----------
    rate_per_s:
        Sustained requests per second granted to the caller.
    burst:
        Bucket capacity (defaults to ``rate_per_s``); a batch larger than
        this can never be granted in one piece, so size it above the
        largest legitimate batch.

    Raises
    ------
    ValueError
        If either knob is not positive.
    """

    def __init__(self, rate_per_s: float, burst: float | None = None) -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        burst = float(rate_per_s) if burst is None else float(burst)
        if burst <= 0.0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.rate_per_s = float(rate_per_s)
        self.burst = burst
        self._tokens = burst
        self._stamp = monotonic()
        self._lock = threading.Lock()

    def acquire(self, tokens: int = 1) -> float:
        """Try to take *tokens*; returns 0.0 on grant, else the suggested
        back-off in seconds until enough tokens will have refilled."""
        with self._lock:
            now = monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate_per_s
            )
            self._stamp = now
            if tokens <= self._tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate_per_s

    def refund(self, tokens: float) -> None:
        """Return *tokens* to the bucket, capped at ``burst``.

        The undo for a charge whose work was never done (the shard router
        charges a whole frame up front and refunds when every sub-frame
        failed).  Refunds never mint tokens beyond the bucket size.
        """
        if tokens <= 0.0:
            return
        with self._lock:
            self._tokens = min(self.burst, self._tokens + tokens)


class SharedTokenBucket:
    """A file-backed token bucket shared by every process that opens it.

    The cluster's fleet-wide quota store: N sharded workers each attach an
    instance pointing at the *same* state file (via
    :meth:`CallerRegistry.attach_rate_limit`), so a caller whose batches
    are split across shards is throttled at one aggregate rate — exactly
    as if a single process served it.

    The state file holds ``{"tokens": float, "stamp": float}`` as JSON; a
    POSIX advisory lock (``fcntl.lockf``) serializes the read-refill-write
    cycle across processes, and a process-local mutex serializes the
    transport's handler threads within one process.  Stamps come from
    ``time.monotonic()`` — ``CLOCK_MONOTONIC`` is machine-wide on Linux,
    so every worker refills against the same clock.  A missing or corrupt
    state file re-initializes to a full bucket (fail-open: a torn write
    can only ever *grant* a little extra burst, never wedge the fleet).

    The surface mirrors :class:`TokenBucket` (``rate_per_s``, ``burst``,
    ``acquire``) so :meth:`CallerRegistry.acquire_rate` and the per-caller
    telemetry snapshots work unchanged.

    Parameters
    ----------
    path:
        The shared state file (created on first use).
    rate_per_s, burst:
        As for :class:`TokenBucket`; every process must be configured with
        the same values (the file holds only the token level).

    Raises
    ------
    ValueError
        If either knob is not positive.
    """

    def __init__(
        self, path: str | os.PathLike, rate_per_s: float, burst: float | None = None
    ) -> None:
        if rate_per_s <= 0.0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        burst = float(rate_per_s) if burst is None else float(burst)
        if burst <= 0.0:
            raise ValueError(f"burst must be > 0, got {burst}")
        self.path = os.fspath(path)
        self.rate_per_s = float(rate_per_s)
        self.burst = burst
        self._lock = threading.Lock()

    def acquire(self, tokens: int = 1) -> float:
        """Try to take *tokens* fleet-wide; returns 0.0 on grant, else the
        suggested back-off in seconds until enough will have refilled."""
        with self._lock:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
            try:
                if fcntl is not None:
                    fcntl.lockf(fd, fcntl.LOCK_EX)
                try:
                    now = monotonic()
                    level, stamp = self._read_state(fd, now)
                    level = min(self.burst, level + (now - stamp) * self.rate_per_s)
                    if tokens <= level:
                        level -= tokens
                        retry_after = 0.0
                    else:
                        retry_after = (tokens - level) / self.rate_per_s
                    state = json.dumps({"tokens": level, "stamp": now})
                    os.lseek(fd, 0, os.SEEK_SET)
                    os.truncate(fd, 0)
                    os.write(fd, state.encode("utf-8"))
                    return retry_after
                finally:
                    if fcntl is not None:
                        fcntl.lockf(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def refund(self, tokens: float) -> None:
        """Return *tokens* fleet-wide, capped at ``burst``.

        Same read-refill-write cycle as :meth:`acquire` under the same
        advisory lock, so a refund races safely with concurrent charges
        from other processes.
        """
        if tokens <= 0.0:
            return
        with self._lock:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
            try:
                if fcntl is not None:
                    fcntl.lockf(fd, fcntl.LOCK_EX)
                try:
                    now = monotonic()
                    level, stamp = self._read_state(fd, now)
                    level = min(self.burst, level + (now - stamp) * self.rate_per_s)
                    level = min(self.burst, level + tokens)
                    state = json.dumps({"tokens": level, "stamp": now})
                    os.lseek(fd, 0, os.SEEK_SET)
                    os.truncate(fd, 0)
                    os.write(fd, state.encode("utf-8"))
                finally:
                    if fcntl is not None:
                        fcntl.lockf(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _read_state(self, fd: int, now: float) -> tuple[float, float]:
        """The persisted ``(tokens, stamp)``, or a full bucket when the
        file is new, torn or unreadable."""
        try:
            os.lseek(fd, 0, os.SEEK_SET)
            raw = os.read(fd, 4096)
            state = json.loads(raw.decode("utf-8"))
            return float(state["tokens"]), float(state["stamp"])
        except (ValueError, KeyError, TypeError, OSError):
            return self.burst, now


@dataclass
class CallerRecord:
    """One registered caller: hashed credential, scopes and telemetry."""

    caller_id: str
    key_hash: str
    scopes: frozenset[str]
    requests: int = 0
    denied: int = 0
    throttled: int = 0
    bucket: TokenBucket | SharedTokenBucket | None = None

    def snapshot(self) -> dict[str, Any]:
        """Plain-type per-caller telemetry (no credential material)."""
        snapshot = {
            "scopes": sorted(self.scopes),
            "requests": self.requests,
            "denied": self.denied,
            "throttled": self.throttled,
        }
        if self.bucket is not None:
            snapshot["rate_limit"] = {
                "requests_per_s": self.bucket.rate_per_s,
                "burst": self.bucket.burst,
            }
        return snapshot


class CallerRegistry:
    """Authorizes API callers by hashed key, with per-caller telemetry.

    Plaintext keys are never stored: :meth:`register` returns the key once
    and keeps only its SHA-256 digest, so a leaked registry snapshot (or a
    telemetry dump) cannot be replayed as a credential.  All entry points
    are thread-safe — the threaded HTTP transport authorizes concurrent
    envelopes against one shared registry.

    Parameters
    ----------
    telemetry:
        Optional hub; authorization outcomes land in ``callers.*`` counters
        next to the rest of the service metrics.
    """

    def __init__(self, telemetry: TelemetryHub | None = None) -> None:
        self.telemetry = telemetry if telemetry is not None else TelemetryHub()
        self._by_hash: dict[str, CallerRecord] = {}
        self._by_id: dict[str, CallerRecord] = {}
        self._lock = threading.Lock()

    @staticmethod
    def hash_key(api_key: str) -> str:
        """The stored form of a credential (SHA-256 hex digest)."""
        return hashlib.sha256(api_key.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #

    def register(
        self,
        caller_id: str,
        scopes: Sequence[str] | frozenset[str],
        api_key: str | None = None,
    ) -> str:
        """Register a caller and return its API key (the only time it exists
        in plaintext here — hand it to the caller and drop it).

        Parameters
        ----------
        caller_id:
            Unique caller name (shows up in telemetry).
        scopes:
            Subset of :data:`KNOWN_SCOPES` this caller may exercise.
        api_key:
            Explicit credential (tests, key rotation); a cryptographically
            random one is generated when omitted.

        Raises
        ------
        ValueError
            If the caller id is empty or taken, a scope is unknown, or the
            explicit key collides with a registered one.
        """
        if not isinstance(caller_id, str) or not caller_id:
            raise ValueError(f"caller_id must be a non-empty string, got {caller_id!r}")
        scopes = frozenset(scopes)
        unknown = scopes - KNOWN_SCOPES
        if unknown:
            raise ValueError(
                f"unknown scopes {sorted(unknown)}; known: {sorted(KNOWN_SCOPES)}"
            )
        if api_key is None:
            api_key = secrets.token_urlsafe(24)
        key_hash = self.hash_key(api_key)
        with self._lock:
            if caller_id in self._by_id:
                raise ValueError(f"caller {caller_id!r} is already registered")
            if key_hash in self._by_hash:
                raise ValueError("api_key is already registered to another caller")
            record = CallerRecord(caller_id=caller_id, key_hash=key_hash, scopes=scopes)
            self._by_id[caller_id] = record
            self._by_hash[key_hash] = record
        return api_key

    def revoke(self, caller_id: str) -> bool:
        """Remove a caller; returns whether it existed."""
        with self._lock:
            record = self._by_id.pop(caller_id, None)
            if record is None:
                return False
            self._by_hash.pop(record.key_hash, None)
            return True

    def rotate_key(self, caller_id: str, api_key: str | None = None) -> str:
        """Replace a caller's credential, returning the new key once.

        The old key stops authorizing the moment this returns: concurrent
        requests still carrying it get the typed ``unknown-api-key`` 401,
        never an exception — rotation under live load degrades exactly
        like a revocation.  Scopes, rate limits and telemetry counters all
        survive the rotation (the caller is the same, only its credential
        changed).

        Parameters
        ----------
        caller_id:
            A registered caller.
        api_key:
            Explicit replacement credential (tests); a cryptographically
            random one is generated when omitted.

        Raises
        ------
        KeyError
            If no such caller is registered.
        ValueError
            If the explicit key already belongs to a different caller.
        """
        if api_key is None:
            api_key = secrets.token_urlsafe(24)
        key_hash = self.hash_key(api_key)
        with self._lock:
            record = self._by_id.get(caller_id)
            if record is None:
                raise KeyError(f"no registered caller {caller_id!r}")
            existing = self._by_hash.get(key_hash)
            if existing is not None and existing is not record:
                raise ValueError("api_key is already registered to another caller")
            self._by_hash.pop(record.key_hash, None)
            record.key_hash = key_hash
            self._by_hash[key_hash] = record
        self.telemetry.increment("callers.rotated")
        return api_key

    def callers(self) -> list[str]:
        """Every registered caller id (sorted)."""
        with self._lock:
            return sorted(self._by_id)

    def scopes_for(self, caller_id: str) -> frozenset[str]:
        """A registered caller's scopes.

        Raises
        ------
        KeyError
            If no such caller is registered.
        """
        with self._lock:
            return self._by_id[caller_id].scopes

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Per-caller telemetry as plain types (no credential material)."""
        with self._lock:
            return {
                caller_id: record.snapshot()
                for caller_id, record in sorted(self._by_id.items())
            }

    # ------------------------------------------------------------------ #
    # per-caller rate limits (token buckets over the same records)
    # ------------------------------------------------------------------ #

    def set_rate_limit(
        self,
        caller_id: str,
        requests_per_s: float,
        burst: float | None = None,
    ) -> None:
        """Attach (or replace) a token-bucket quota on a registered caller.

        Every authorized request consumes one token; a batch or binary
        frame consumes one per request it carries.  Exhausted buckets
        answer a typed ``rate-limited``
        :class:`~repro.service.protocol.ThrottledResponse` (HTTP 429 with
        ``Retry-After``) *before* dispatch — the operation never runs.

        Parameters
        ----------
        caller_id:
            A registered caller.
        requests_per_s:
            Sustained per-second budget.
        burst:
            Bucket capacity (defaults to ``requests_per_s``); size it above
            the caller's largest legitimate batch.

        Raises
        ------
        KeyError
            If no such caller is registered.
        ValueError
            If a knob is not positive.
        """
        bucket = TokenBucket(requests_per_s, burst)
        with self._lock:
            self._by_id[caller_id].bucket = bucket

    def attach_rate_limit(
        self, caller_id: str, bucket: TokenBucket | SharedTokenBucket
    ) -> None:
        """Attach an externally built bucket to a registered caller.

        The cluster entry point: every worker attaches the *same*
        :class:`SharedTokenBucket` state file here, making the caller's
        quota fleet-wide.  Any object exposing ``rate_per_s``, ``burst``
        and ``acquire(count) -> float`` works — :meth:`acquire_rate` and
        the telemetry snapshot only use that surface.

        Raises
        ------
        KeyError
            If no such caller is registered.
        TypeError
            If *bucket* lacks the token-bucket surface.
        """
        for attr in ("rate_per_s", "burst", "acquire"):
            if not hasattr(bucket, attr):
                raise TypeError(
                    f"bucket must expose {attr!r} (a TokenBucket-shaped "
                    f"object), got {type(bucket).__name__}"
                )
        with self._lock:
            self._by_id[caller_id].bucket = bucket

    def clear_rate_limit(self, caller_id: str) -> None:
        """Remove a caller's quota (KeyError if no such caller)."""
        with self._lock:
            self._by_id[caller_id].bucket = None

    def acquire_rate(
        self, record: CallerRecord, count: int = 1
    ) -> tuple[str, float] | None:
        """Charge *count* requests against a caller's quota.

        Returns ``None`` when granted (or the caller has no quota), else a
        ``(reason, retry_after_s)`` rejection: :data:`REASON_RATE_LIMITED`
        when waiting will help, or :data:`REASON_BATCH_EXCEEDS_BURST` when
        *count* exceeds the bucket's capacity outright — no amount of
        waiting can ever grant it, so the caller must split the batch
        instead of retrying (``retry_after_s`` is then the full-bucket
        refill time, after which a burst-sized batch succeeds).
        Rejections land in the ``callers.rate_limited`` counters and the
        per-caller ``throttled`` tally.
        """
        bucket = record.bucket
        if bucket is None:
            return None
        if count > bucket.burst:
            rejection = (REASON_BATCH_EXCEEDS_BURST, bucket.burst / bucket.rate_per_s)
        else:
            retry_after = bucket.acquire(count)
            if retry_after == 0.0:
                return None
            rejection = (REASON_RATE_LIMITED, retry_after)
        with self._lock:
            record.throttled += count
        self.telemetry.increment("callers.rate_limited", count)
        self.telemetry.increment(f"callers.{record.caller_id}.rate_limited", count)
        return rejection

    # ------------------------------------------------------------------ #

    def record_usage(self, record: CallerRecord, count: int = 1) -> None:
        """Fold *count* authorized requests into a caller's telemetry.

        The batch fast path authorizes one ``(api_key, scope)`` pair once
        per batch and folds the remaining envelopes in here, so counters
        stay per-request accurate without per-request hashing and locking.
        """
        if count <= 0:
            return
        with self._lock:
            record.requests += count
        self.telemetry.increment("callers.requests", count)
        self.telemetry.increment(f"callers.{record.caller_id}.requests", count)

    def record_denied(self, record: CallerRecord | None = None, count: int = 1) -> None:
        """Fold *count* denials into the (per-caller, when known) telemetry."""
        if count <= 0:
            return
        self.telemetry.increment("callers.denied", count)
        if record is not None:
            with self._lock:
                record.denied += count
            self.telemetry.increment(f"callers.{record.caller_id}.denied", count)

    def authorize(
        self, api_key: str | None, required_scope: str, kind: str
    ) -> CallerRecord | DeniedResponse:
        """Authorize one request: its caller and the scope it needs.

        Returns the authorized :class:`CallerRecord` — or a typed
        :class:`DeniedResponse` (never an exception: the caller of this
        method always has a response to send back).  Outcomes land in the
        per-caller counters and the shared telemetry hub.
        """
        if api_key is None or api_key == "":
            self.record_denied()
            return DeniedResponse(
                request_kind=kind,
                code=CODE_MISSING_KEY,
                message="the envelope carries no api_key; v2 requests must "
                "be authenticated",
                required_scope=required_scope,
            )
        # O(1) digest lookup: keys are high-entropy random tokens, so their
        # SHA-256 digests carry no attacker-predictable structure a hash
        # lookup's timing could leak — no constant-time scan needed.
        key_hash = self.hash_key(api_key)
        with self._lock:
            record = self._by_hash.get(key_hash)
        if record is None:
            self.record_denied()
            return DeniedResponse(
                request_kind=kind,
                code=CODE_UNKNOWN_KEY,
                message="the envelope's api_key matches no registered caller",
                required_scope=required_scope,
            )
        if required_scope not in record.scopes:
            self.record_denied(record)
            return DeniedResponse(
                request_kind=kind,
                code=CODE_INSUFFICIENT_SCOPE,
                message=f"caller {record.caller_id!r} lacks the "
                f"{required_scope!r} scope required by {kind!r}",
                required_scope=required_scope,
            )
        self.record_usage(record)
        return record

    def authorize_many(
        self, api_key: str | None, required_scope: str, kind: str, count: int
    ) -> CallerRecord | DeniedResponse:
        """Authorize *count* same-credential requests with one key check.

        The columnar-frame form of :meth:`authorize`: the outcome of one
        hash-and-scope check covers every request in the frame, and the
        remaining ``count - 1`` grants or denials are folded into the
        telemetry so the per-caller counters stay per-request accurate —
        including the ``denied`` tally of a known caller rejected for
        insufficient scope.
        """
        outcome = self.authorize(api_key, required_scope, kind)
        if isinstance(outcome, DeniedResponse):
            record = None
            if outcome.code == CODE_INSUFFICIENT_SCOPE and api_key:
                key_hash = self.hash_key(api_key)
                with self._lock:
                    record = self._by_hash.get(key_hash)
            self.record_denied(record, count - 1)
            return outcome
        self.record_usage(outcome, count - 1)
        return outcome


# --------------------------------------------------------------------- #
# the envelope processor
# --------------------------------------------------------------------- #


class EnvelopeProcessor:
    """Authorizes versioned envelopes and dispatches them onto the planes.

    The v2 front door, transport-agnostic: the HTTP transport feeds it
    parsed wire envelopes, :class:`EnvelopeChannel` feeds it in-process
    ones, and both get identical behaviour:

    1. **version check** — only :data:`API_VERSION` is accepted;
    2. **plane check** — when the entry point pins a plane (the two v2
       endpoints do), a request of the other plane is rejected with the
       typed ``wrong-plane`` code *before* authorization work happens;
    3. **authorization** — the :class:`CallerRegistry` resolves the API
       key and checks the scope the operation requires (``data:write`` or
       ``admin``); failures yield typed :class:`DeniedResponse`\\ s and the
       request never reaches the gateway;
    4. **idempotency** — an envelope repeating a caller's idempotency key
       answers with the recorded response (``replayed=True``);
    5. **dispatch** — admitted data-plane requests go through the
       *channel* (the micro-batching frontend in process; the transport
       passes a queue-aware adapter so single HTTP requests keep
       cross-connection coalescing), control-plane requests through the
       frontend's control door; every batch keeps submission order.

    Parameters
    ----------
    frontend:
        The service frontend whose gateway owns the planes.
    callers:
        The registry authorizing envelopes (a fresh, *empty* one — which
        rejects everything — when omitted).
    channel:
        Optional dispatch override for admitted data-plane requests: any
        object with ``submit``/``submit_many`` (defaults to *frontend*).
    idempotency_capacity:
        Bound on remembered ``(caller, idempotency_key)`` responses
        (least recently used evicted).
    """

    def __init__(
        self,
        frontend: ServiceFrontend,
        callers: CallerRegistry | None = None,
        channel: Any | None = None,
        idempotency_capacity: int = 1024,
    ) -> None:
        if idempotency_capacity < 1:
            raise ValueError(
                f"idempotency_capacity must be >= 1, got {idempotency_capacity}"
            )
        self.frontend = frontend
        self.callers = (
            callers
            if callers is not None
            else CallerRegistry(telemetry=frontend.telemetry)
        )
        self.channel = channel if channel is not None else frontend
        self.telemetry = frontend.telemetry
        # Set by the transport / fleet when request tracing is enabled;
        # ``None`` keeps admission byte-identical to the untraced path.
        self.tracer: Any | None = None
        self.idempotency_capacity = idempotency_capacity
        self._idempotent: "OrderedDict[tuple[str, str], Response]" = OrderedDict()
        # Keys whose operation is currently executing: a concurrent retry
        # waits for the owner instead of executing the operation a second
        # time (the whole point of an idempotency key).
        self._inflight: dict[tuple[str, str], threading.Event] = {}
        self._idempotent_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # admission (version, plane, caller, idempotency)
    # ------------------------------------------------------------------ #

    @staticmethod
    def required_scope(request: Request) -> str:
        """The caller scope *request*'s operation demands."""
        return SCOPE_DATA_WRITE if is_data_plane(request) else SCOPE_ADMIN

    def authorize_frame(
        self, api_key: str | None, kind: str, count: int, charge: bool = True
    ) -> CallerRecord | DeniedResponse | ThrottledResponse:
        """Authorize a columnar frame of *count* data-plane requests at once.

        The binary codec's admission door: a whole frame travels under one
        caller credential, so authorization (key hash, scope check) runs
        **once** and its outcome covers every request — no per-envelope
        object construction anywhere.  Per-caller telemetry stays
        per-request accurate (the remaining ``count - 1`` grants or
        denials are folded in), and the caller's rate-limit bucket is
        charged *count* tokens atomically.

        *charge=False* skips only the bucket charge (key and scope checks
        still run): the door for router-prepaid sub-frames, whose quota was
        already charged once at the shard router before the split — a
        worker charging again would bill the frame per shard.

        Returns the authorized record, a typed :class:`DeniedResponse`
        (401/403) or a ``rate-limited``
        :class:`~repro.service.protocol.ThrottledResponse` (429) for the
        frame as a whole.
        """
        outcome = self.callers.authorize_many(api_key, SCOPE_DATA_WRITE, kind, count)
        if isinstance(outcome, DeniedResponse):
            self.telemetry.increment("envelope.denied", count)
            return outcome
        if not charge:
            return outcome
        rejection = self.callers.acquire_rate(outcome, count)
        if rejection is not None:
            return self._rate_limited(kind, outcome, rejection)
        return outcome

    def _admit(
        self,
        envelope: Envelope,
        plane: str | None,
        authorize: Any | None = None,
    ) -> tuple[SealedResponse | None, CallerRecord | None]:
        """Run admission (version, plane, caller); non-``None`` sealed
        short-circuits.  *authorize* overrides the caller-authorization
        callable (the batch path passes a per-batch memoizing wrapper)."""
        kind = request_kind(envelope.request)
        if envelope.api_version != API_VERSION:
            self.telemetry.increment("envelope.denied")
            return (
                SealedResponse(
                    response=DeniedResponse(
                        request_kind=kind,
                        code=CODE_UNSUPPORTED_VERSION,
                        message=f"api_version {envelope.api_version} is not "
                        f"supported; this service speaks v{API_VERSION} "
                        "(and the legacy /v1 endpoint)",
                    ),
                    request_id=envelope.request_id,
                    api_version=envelope.api_version,
                ),
                None,
            )
        if plane == "data" and not is_data_plane(envelope.request):
            return self._wrong_plane(envelope, kind, "data"), None
        if plane == "control" and not is_control_plane(envelope.request):
            return self._wrong_plane(envelope, kind, "control"), None
        if authorize is None:
            authorize = self.callers.authorize
        outcome = authorize(
            envelope.api_key, self.required_scope(envelope.request), kind
        )
        if isinstance(outcome, DeniedResponse):
            self.telemetry.increment("envelope.denied")
            return (
                SealedResponse(response=outcome, request_id=envelope.request_id),
                None,
            )
        rejection = self.callers.acquire_rate(outcome)
        if rejection is not None:
            return (
                SealedResponse(
                    response=self._rate_limited(
                        kind, outcome, rejection, envelope.request
                    ),
                    request_id=envelope.request_id,
                    caller_id=outcome.caller_id,
                ),
                None,
            )
        return None, outcome

    @staticmethod
    def _rate_limited(
        kind: str,
        caller: CallerRecord,
        rejection: tuple[str, float],
        request: Request | None = None,
    ) -> ThrottledResponse:
        """The typed 429 a caller's exhausted token bucket answers with."""
        reason, retry_after = rejection
        bucket = caller.bucket
        return ThrottledResponse(
            request_kind=kind,
            reason=reason,
            queue_depth=0,
            max_depth=int(bucket.burst) if bucket is not None else 0,
            retry_after_s=retry_after,
            user_id=getattr(request, "user_id", None),
        )

    def _wrong_plane(self, envelope: Envelope, kind: str, plane: str) -> SealedResponse:
        other = "control" if plane == "data" else "data"
        self.telemetry.increment("envelope.denied")
        return SealedResponse(
            response=DeniedResponse(
                request_kind=kind,
                code=CODE_WRONG_PLANE,
                message=f"{kind!r} is a {other}-plane operation and is "
                f"unreachable from the {plane} plane",
            ),
            request_id=envelope.request_id,
        )

    def _reserve(self, key: tuple[str, str]) -> Response | None:
        """Claim *key* for execution, or return its recorded response.

        Returns the recorded response when the operation already ran to a
        recordable outcome (replay it); returns ``None`` when this caller
        now *owns* the key and must execute the operation, then release it
        with :meth:`_finish`.  A concurrent envelope sharing the key blocks
        here until the owner finishes — two threads can never both execute
        one idempotent operation.
        """
        while True:
            with self._idempotent_lock:
                response = self._idempotent.get(key)
                if response is not None:
                    self._idempotent.move_to_end(key)
                    return response
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    return None
            # Wait OUTSIDE the lock for the owner to finish, then re-check:
            # either its response was recorded (replay) or it ended in a
            # non-recordable outcome (this retry becomes the new owner).
            event.wait()

    def _finish(self, key: tuple[str, str], response: Response | None) -> None:
        """Release *key*, recording *response* when it should replay.

        Only successful outcomes are recorded: a throttled rejection or a
        middleware-mapped :class:`~repro.service.protocol.ErrorResponse`
        (possibly transient — detector not yet published, registry race)
        must *execute* on retry, not replay the failure forever.
        """
        record = response is not None and not isinstance(
            response, (ThrottledResponse, ErrorResponse)
        )
        with self._idempotent_lock:
            if record:
                self._idempotent[key] = response
                while len(self._idempotent) > self.idempotency_capacity:
                    self._idempotent.popitem(last=False)
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    # ------------------------------------------------------------------ #
    # tracing hooks
    # ------------------------------------------------------------------ #

    def _start_trace(self, envelope: Envelope) -> tuple[TraceContext | None, bool]:
        """``(trace, owned)`` for one envelope entering the processor.

        A trace the transport already bound to the wrapped request is
        reused (the transport owns its lifecycle); otherwise one is minted
        here — adopting the envelope's client-supplied ``trace_id`` when
        present — and this processor owns finishing it.
        """
        tracer = self.tracer
        if tracer is None:
            return None, False
        trace = tracer.trace_for(envelope.request)
        if trace is not None:
            return trace, False
        trace = tracer.start(
            "envelope",
            trace_id=envelope.trace_id,
            request_id=envelope.request_id,
            user_id=getattr(envelope.request, "user_id", None),
        )
        if trace is None:
            return None, False
        tracer.bind(envelope.request, trace)
        return trace, True

    def _admit_traced(
        self,
        envelope: Envelope,
        plane: str | None,
        trace: TraceContext | None,
        authorize: Any | None = None,
    ) -> tuple[SealedResponse | None, CallerRecord | None]:
        """:meth:`_admit` with the admission span recorded on *trace*."""
        if trace is None:
            return self._admit(envelope, plane, authorize=authorize)
        started = perf_counter()
        sealed, caller = self._admit(envelope, plane, authorize=authorize)
        trace.add_span(SPAN_ADMISSION, perf_counter() - started)
        if caller is not None:
            trace.caller_id = caller.caller_id
        return sealed, caller

    @staticmethod
    def _seal_outcome(
        sealed: SealedResponse, trace: TraceContext | None
    ) -> SealedResponse:
        """Annotate *trace* with the sealed outcome and echo its id."""
        if trace is None:
            return sealed
        if sealed.caller_id is not None:
            trace.caller_id = sealed.caller_id
        response = sealed.response
        if isinstance(response, DeniedResponse):
            trace.annotate(error=response.code)
        elif isinstance(response, ErrorResponse):
            trace.annotate(error=response.error)
        elif isinstance(response, ThrottledResponse):
            trace.annotate(error=response.reason)
        if sealed.replayed:
            trace.annotate(replayed=True)
        if sealed.trace_id is None:
            sealed = replace(sealed, trace_id=trace.trace_id)
        return sealed

    # ------------------------------------------------------------------ #
    # processing
    # ------------------------------------------------------------------ #

    def process(self, envelope: Envelope, plane: str | None = None) -> SealedResponse:
        """Authorize and dispatch one envelope; always returns sealed.

        Parameters
        ----------
        envelope:
            The versioned request.
        plane:
            ``"data"`` / ``"control"`` to enforce an endpoint's plane
            restriction, ``None`` to infer from the request type (the
            in-process channel's behaviour).
        """
        trace, owned = self._start_trace(envelope)
        try:
            sealed, caller = self._admit_traced(envelope, plane, trace)
            if sealed is not None:
                return self._seal_outcome(sealed, trace)
            if envelope.idempotency_key is None:
                return self._seal_outcome(
                    SealedResponse(
                        response=self._dispatch(envelope.request),
                        request_id=envelope.request_id,
                        caller_id=caller.caller_id,
                    ),
                    trace,
                )
            key = (caller.caller_id, envelope.idempotency_key)
            recorded = self._reserve(key)
            if recorded is not None:
                self.telemetry.increment("envelope.replayed")
                return self._seal_outcome(
                    SealedResponse(
                        response=recorded,
                        request_id=envelope.request_id,
                        caller_id=caller.caller_id,
                        replayed=True,
                    ),
                    trace,
                )
            response: Response | None = None
            try:
                response = self._dispatch(envelope.request)
            finally:
                self._finish(key, response)
            return self._seal_outcome(
                SealedResponse(
                    response=response,
                    request_id=envelope.request_id,
                    caller_id=caller.caller_id,
                ),
                trace,
            )
        finally:
            if owned:
                self.tracer.finish(trace)

    def _dispatch(self, request: Request) -> Response:
        if is_data_plane(request):
            return self.channel.submit(request)
        return self.frontend.submit_control(request)

    def process_many(
        self, envelopes: Sequence[Envelope], plane: str | None = None
    ) -> list[SealedResponse]:
        """Authorize and dispatch a batch, preserving submission order.

        Admitted requests dispatch in one ``submit_many`` pass, so
        consecutive authenticate envelopes coalesce into fused scoring
        exactly as bare v1 batches do; denied envelopes answer in place
        without costing their neighbours anything.  Idempotency keys apply
        exactly as on the single path — a key repeated *within* one batch
        executes once, with the later occurrence replaying the first's
        response.
        """
        sealed: list[SealedResponse | None] = [None] * len(envelopes)
        dispatch: list[tuple[int, Envelope, CallerRecord]] = []
        owned: dict[tuple[str, str], int] = {}  # key -> owner position
        duplicates: list[tuple[int, Envelope, CallerRecord, int]] = []
        responses_by_index: dict[int, Response] = {}
        traces: dict[int, TraceContext] = {}
        owned_traces: list[TraceContext] = []

        # A fleet batch is typically hundreds of envelopes under ONE
        # credential: authorize each (api_key, scope) pair once, replay the
        # outcome for its siblings, and fold their counts back into the
        # per-caller telemetry so counters stay per-request accurate.
        auth_cache: dict[tuple[str | None, str], CallerRecord | DeniedResponse] = {}
        reuse_counts: dict[tuple[str | None, str], int] = {}

        def batch_authorize(
            api_key: str | None, required_scope: str, kind: str
        ) -> CallerRecord | DeniedResponse:
            cache_key = (api_key, required_scope)
            outcome = auth_cache.get(cache_key)
            if outcome is None:
                outcome = self.callers.authorize(api_key, required_scope, kind)
                auth_cache[cache_key] = outcome
                return outcome
            reuse_counts[cache_key] = reuse_counts.get(cache_key, 0) + 1
            if isinstance(outcome, DeniedResponse):
                # Re-tag with this envelope's kind; the denial is the same.
                return DeniedResponse(
                    request_kind=kind,
                    code=outcome.code,
                    message=outcome.message,
                    required_scope=outcome.required_scope,
                )
            return outcome

        try:
            for index, envelope in enumerate(envelopes):
                trace, trace_owned = self._start_trace(envelope)
                if trace is not None:
                    traces[index] = trace
                    if trace_owned:
                        owned_traces.append(trace)
                short_circuit, caller = self._admit_traced(
                    envelope, plane, trace, authorize=batch_authorize
                )
                if short_circuit is not None:
                    sealed[index] = self._seal_outcome(short_circuit, trace)
                    continue
                if envelope.idempotency_key is None:
                    dispatch.append((index, envelope, caller))
                    continue
                key = (caller.caller_id, envelope.idempotency_key)
                if key in owned:
                    # Same key twice in one batch: defer to the in-batch
                    # owner (waiting on it here would deadlock this very
                    # thread).
                    duplicates.append((index, envelope, caller, owned[key]))
                    continue
                recorded = self._reserve(key)
                if recorded is not None:
                    self.telemetry.increment("envelope.replayed")
                    sealed[index] = self._seal_outcome(
                        SealedResponse(
                            response=recorded,
                            request_id=envelope.request_id,
                            caller_id=caller.caller_id,
                            replayed=True,
                        ),
                        trace,
                    )
                    continue
                owned[key] = index
                dispatch.append((index, envelope, caller))
            if dispatch:
                responses = self.channel.submit_many(
                    [envelope.request for _, envelope, _ in dispatch]
                )
                for (index, envelope, caller), response in zip(dispatch, responses):
                    responses_by_index[index] = response
                    sealed[index] = self._seal_outcome(
                        SealedResponse(
                            response=response,
                            request_id=envelope.request_id,
                            caller_id=caller.caller_id,
                        ),
                        traces.get(index),
                    )
            for index, envelope, caller, owner_index in duplicates:
                response = responses_by_index[owner_index]
                self.telemetry.increment("envelope.replayed")
                sealed[index] = self._seal_outcome(
                    SealedResponse(
                        response=response,
                        request_id=envelope.request_id,
                        caller_id=caller.caller_id,
                        replayed=True,
                    ),
                    traces.get(index),
                )
        finally:
            # Release every owned key whether dispatch succeeded or not; a
            # key whose operation never produced a response is released
            # unrecorded, so a retry executes.
            for key, index in owned.items():
                self._finish(key, responses_by_index.get(index))
            # Fold the cache-replayed authorizations into the telemetry.
            for cache_key, count in reuse_counts.items():
                outcome = auth_cache[cache_key]
                if isinstance(outcome, DeniedResponse):
                    self.callers.record_denied(count=count)
                else:
                    self.callers.record_usage(outcome, count=count)
            for trace in owned_traces:
                self.tracer.finish(trace)
        return sealed  # type: ignore[return-value]


def unseal(envelope: Envelope, sealed: SealedResponse) -> Response:
    """Verify the echoed request id and unwrap one sealed response.

    The single definition of the caller-side v2 contract, shared by the
    in-process :class:`EnvelopeChannel` and the HTTP
    :class:`~repro.service.transport.ServiceClient`.

    Raises
    ------
    ValueError
        If *sealed* echoes a different ``request_id`` than *envelope*.
    PermissionError
        If the server rejected the envelope's caller (the in-process
        analogue of an HTTP 401/403), with the typed code in the message.
    """
    if sealed.request_id != envelope.request_id:
        raise ValueError(
            f"response echoes request_id {sealed.request_id!r}, "
            f"expected {envelope.request_id!r}"
        )
    if isinstance(sealed.response, DeniedResponse):
        raise PermissionError(f"{sealed.response.code}: {sealed.response.message}")
    return sealed.response


class EnvelopeChannel:
    """A :class:`~repro.service.fleet.RequestChannel` speaking v2 envelopes.

    Wraps every submitted protocol request in an :class:`Envelope` under
    one caller's credential, processes it in-process, verifies the echoed
    request id and unwraps the inner response — so the fleet simulator
    (and anything else built on the channel protocol) runs on the v2 API
    without touching a socket.

    Raises
    ------
    PermissionError
        From ``submit``/``submit_many``, when the processor denies the
        wrapped request (the in-process analogue of an HTTP 401/403).
    """

    def __init__(self, processor: EnvelopeProcessor, api_key: str) -> None:
        self.processor = processor
        self.api_key = api_key

    def _wrap(
        self, request: Request, idempotency_key: str | None = None
    ) -> Envelope:
        return Envelope(
            request=request, api_key=self.api_key, idempotency_key=idempotency_key
        )

    def submit(self, request: Request) -> Response:
        """Envelope-wrap and dispatch one request; returns the inner response."""
        envelope = self._wrap(request)
        return unseal(envelope, self.processor.process(envelope))

    def submit_sealed(
        self, request: Request, idempotency_key: str | None = None
    ) -> SealedResponse:
        """Dispatch one request and return the **sealed** response.

        Unlike :meth:`submit` this never raises on a caller rejection —
        the typed :class:`DeniedResponse` comes back inside the seal, and
        the envelope-level metadata (``replayed``, ``caller_id``) stays
        visible.  The adversarial fleet and the chaos harness use this
        door to observe exactly what a wire caller would see.

        Raises
        ------
        ValueError
            If the echoed ``request_id`` does not match (a transport bug,
            never a caller-visible outcome).
        """
        envelope = self._wrap(request, idempotency_key=idempotency_key)
        sealed = self.processor.process(envelope)
        if sealed.request_id != envelope.request_id:
            raise ValueError(
                f"response echoes request_id {sealed.request_id!r}, "
                f"expected {envelope.request_id!r}"
            )
        return sealed

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        """Envelope-wrap and dispatch a batch; responses in order."""
        envelopes = [self._wrap(request) for request in requests]
        return [
            unseal(envelope, sealed)
            for envelope, sealed in zip(
                envelopes, self.processor.process_many(envelopes)
            )
        ]


# --------------------------------------------------------------------- #
# wire codec
# --------------------------------------------------------------------- #

#: Wire kind tags of the envelope layer.
ENVELOPE_KIND = "envelope"
SEALED_KIND = "sealed-response"
DENIED_KIND = "denied-response"


def envelope_to_payload(envelope: Envelope) -> dict[str, Any]:
    """Serialise an envelope into a plain tagged structure.

    ``trace_id`` is emitted only when set: readers tolerate the extra key,
    and untraced envelopes stay byte-identical to the pre-tracing wire
    form (pinned golden fixtures).
    """
    payload = {
        "kind": ENVELOPE_KIND,
        "api_version": int(envelope.api_version),
        "request_id": envelope.request_id,
        "idempotency_key": envelope.idempotency_key,
        "api_key": envelope.api_key,
        "request": request_to_payload(envelope.request),
    }
    if envelope.trace_id is not None:
        payload["trace_id"] = envelope.trace_id
    return payload


def envelope_from_payload(payload: Mapping[str, Any]) -> Envelope:
    """Rebuild an envelope from :func:`envelope_to_payload` output.

    Raises
    ------
    ValueError
        If *payload* is not a mapping, is not tagged as an envelope, lacks
        a required field, or its wrapped request is malformed.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"envelope payload must be a mapping, got {type(payload).__name__}"
        )
    kind = payload.get("kind", ENVELOPE_KIND)
    if kind != ENVELOPE_KIND:
        raise ValueError(f"payload does not describe an envelope: kind={kind!r}")
    try:
        api_version = payload["api_version"]
        request_id = payload["request_id"]
        request_payload = payload["request"]
    except KeyError as error:
        raise ValueError(
            f"envelope payload is missing required field {error.args[0]!r}"
        ) from None
    if not isinstance(api_version, int) or isinstance(api_version, bool):
        raise ValueError(f"api_version must be an int, got {api_version!r}")
    return Envelope(
        request=request_from_payload(request_payload),
        api_key=payload.get("api_key"),
        request_id=request_id,
        idempotency_key=payload.get("idempotency_key"),
        api_version=api_version,
        trace_id=payload.get("trace_id"),
    )


def sealed_to_payload(sealed: SealedResponse) -> dict[str, Any]:
    """Serialise a sealed response into a plain tagged structure."""
    if isinstance(sealed.response, DeniedResponse):
        inner: dict[str, Any] = {
            "kind": DENIED_KIND,
            "request_kind": sealed.response.request_kind,
            "code": sealed.response.code,
            "message": sealed.response.message,
            "required_scope": sealed.response.required_scope,
        }
    else:
        inner = response_to_payload(sealed.response)
    payload = {
        "kind": SEALED_KIND,
        "api_version": int(sealed.api_version),
        "request_id": sealed.request_id,
        "caller_id": sealed.caller_id,
        "replayed": bool(sealed.replayed),
        "response": inner,
    }
    if sealed.trace_id is not None:
        payload["trace_id"] = sealed.trace_id
    return payload


def sealed_from_payload(payload: Mapping[str, Any]) -> SealedResponse:
    """Rebuild a sealed response from :func:`sealed_to_payload` output.

    Raises
    ------
    ValueError
        If *payload* is not a sealed-response mapping or lacks a required
        field.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"sealed payload must be a mapping, got {type(payload).__name__}"
        )
    if payload.get("kind") != SEALED_KIND:
        raise ValueError(
            f"payload does not describe a sealed response: kind={payload.get('kind')!r}"
        )
    try:
        request_id = payload["request_id"]
        inner_payload = payload["response"]
    except KeyError as error:
        raise ValueError(
            f"sealed payload is missing required field {error.args[0]!r}"
        ) from None
    if isinstance(inner_payload, Mapping) and inner_payload.get("kind") == DENIED_KIND:
        inner: Response | DeniedResponse = DeniedResponse(
            request_kind=inner_payload.get("request_kind", "unknown"),
            code=inner_payload["code"],
            message=inner_payload.get("message", ""),
            required_scope=inner_payload.get("required_scope"),
        )
    else:
        inner = response_from_payload(inner_payload)
    return SealedResponse(
        response=inner,
        request_id=request_id,
        api_version=int(payload.get("api_version", API_VERSION)),
        caller_id=payload.get("caller_id"),
        replayed=bool(payload.get("replayed", False)),
        trace_id=payload.get("trace_id"),
    )


def dumps_envelope(envelope: Envelope) -> str:
    """Serialise an envelope to its JSON wire form."""
    return serialization.dumps(envelope_to_payload(envelope))


def loads_envelope(text: str) -> Envelope:
    """Parse an envelope from its JSON wire form (ValueError on bad input)."""
    return envelope_from_payload(serialization.loads(text))


def dumps_sealed(sealed: SealedResponse) -> str:
    """Serialise a sealed response to its JSON wire form."""
    return serialization.dumps(sealed_to_payload(sealed))


def loads_sealed(text: str) -> SealedResponse:
    """Parse a sealed response from its JSON wire form (ValueError on bad input)."""
    return sealed_from_payload(serialization.loads(text))
