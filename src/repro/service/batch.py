"""Compatibility re-export: batch scoring moved to :mod:`repro.core.scoring`.

The batch scorer is the engine behind both the single-user
:class:`~repro.core.authenticator.ContextualAuthenticator` and the serving
frontend, so it now lives in the ``core`` layer; this module keeps the
original ``repro.service.batch`` import path working.
"""

from repro.core.scoring import (
    BatchScorer,
    BatchScoreResult,
    score_fleet,
    score_requests,
)

__all__ = ["BatchScorer", "BatchScoreResult", "score_fleet", "score_requests"]
