"""Vectorized batch scoring of authentication windows.

The seed's :class:`~repro.core.authenticator.ContextualAuthenticator` looped
over windows one at a time, transforming and scoring each 1-row matrix
separately.  The :class:`BatchScorer` groups a batch of windows by the
per-context model that will score them and runs one whole-matrix
``scale → decision-function → predict`` pass per model, which is the
difference between thousands of tiny BLAS calls and a handful of large ones.

Model selection replicates the seed authenticator exactly (including the
fall-back behaviour for unknown contexts and the single-model "w/o context"
mode), and both the confidence score and the accept decision are computed by
the same :class:`~repro.devices.cloud.ContextModel` methods the per-window
path used.  With the paper's default linear kernel-ridge models the batched
scores are bit-for-bit identical to per-window scoring (the primal decision
projection is batch-size invariant); non-linear kernels agree to float
rounding because their kernel matrices are BLAS products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.sensors.types import CoarseContext

if TYPE_CHECKING:  # imported lazily at runtime to avoid import cycles
    from repro.devices.cloud import ContextModel, TrainedModelBundle


@dataclass(frozen=True)
class BatchScoreResult:
    """Scores and decisions for one batch of windows.

    Attributes
    ----------
    scores:
        Confidence score per window (positive = legitimate side).
    accepted:
        Boolean accept decision per window.
    model_contexts:
        The context of the model that actually scored each window (after
        fall-back resolution), matching the seed's per-decision ``context``.
    model_version:
        Version of the bundle that produced the scores.
    """

    scores: np.ndarray
    accepted: np.ndarray
    model_contexts: tuple[CoarseContext, ...]
    model_version: int

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def n_accepted(self) -> int:
        return int(np.count_nonzero(self.accepted))

    @property
    def accept_rate(self) -> float:
        return float(np.mean(self.accepted)) if len(self.scores) else 0.0


class BatchScorer:
    """Scores many windows against one user's model bundle in bulk.

    Parameters
    ----------
    bundle:
        The trained per-context model bundle to score against.
    use_context:
        Mirrors :class:`~repro.core.authenticator.ContextualAuthenticator`:
        when false a single model (the stationary one if present) scores
        every window.
    """

    def __init__(self, bundle: "TrainedModelBundle", use_context: bool = True) -> None:
        if not bundle.models:
            raise ValueError("the model bundle contains no trained models")
        self.bundle = bundle
        self.use_context = use_context

    # ------------------------------------------------------------------ #
    # model selection (mirrors ContextualAuthenticator._select_model)
    # ------------------------------------------------------------------ #

    def select_model(self, context: CoarseContext) -> "ContextModel":
        """The model that scores windows detected under *context*."""
        if not self.use_context:
            if CoarseContext.STATIONARY in self.bundle.models:
                return self.bundle.models[CoarseContext.STATIONARY]
            return next(iter(self.bundle.models.values()))
        if context in self.bundle.models:
            return self.bundle.models[context]
        # Degrade gracefully for never-enrolled contexts, as the seed did.
        return next(iter(self.bundle.models.values()))

    # ------------------------------------------------------------------ #

    def score(
        self, features: np.ndarray, contexts: Sequence[CoarseContext]
    ) -> BatchScoreResult:
        """Score a batch of windows, each with its detected context.

        Rows sharing a resolved model are scored in a single vectorized
        call; results are scattered back into window order.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        contexts = list(contexts)
        if len(contexts) != len(features):
            raise ValueError(
                f"got {len(features)} feature rows but {len(contexts)} context labels"
            )
        n_windows = len(features)
        scores = np.empty(n_windows)
        accepted = np.empty(n_windows, dtype=bool)
        model_contexts: list[CoarseContext] = [CoarseContext.STATIONARY] * n_windows
        if n_windows == 0:
            return BatchScoreResult(
                scores=scores,
                accepted=accepted,
                model_contexts=tuple(),
                model_version=self.bundle.version,
            )
        # Resolve each distinct detected context to its model once, then
        # bucket window indices by the *resolved* model (several detected
        # contexts may fall back onto the same model).
        resolved: dict[CoarseContext, "ContextModel"] = {
            context: self.select_model(context) for context in set(contexts)
        }
        buckets: dict[int, list[int]] = {}
        models_by_id: dict[int, "ContextModel"] = {}
        for index, context in enumerate(contexts):
            model = resolved[context]
            key = id(model)
            models_by_id[key] = model
            buckets.setdefault(key, []).append(index)
        for key, indices in buckets.items():
            model = models_by_id[key]
            rows = features[indices]
            scores[indices], accepted[indices] = model.batch_decisions(rows)
            for index in indices:
                model_contexts[index] = model.context
        return BatchScoreResult(
            scores=scores,
            accepted=accepted,
            model_contexts=tuple(model_contexts),
            model_version=self.bundle.version,
        )

    def confidence_scores(
        self, features: np.ndarray, contexts: Sequence[CoarseContext]
    ) -> np.ndarray:
        """Confidence score per window (the retraining monitor's input)."""
        return self.score(features, contexts).scores


def score_fleet(
    scorers: dict[str, BatchScorer],
    requests: Sequence[tuple[str, np.ndarray, Sequence[CoarseContext]]],
) -> dict[str, BatchScoreResult]:
    """Score a batch of per-user requests against their respective models.

    Parameters
    ----------
    scorers:
        One :class:`BatchScorer` per user id.
    requests:
        ``(user_id, features, contexts)`` triples; multiple requests for the
        same user are concatenated and scored in one pass.

    Returns
    -------
    Mapping from user id to that user's combined batch result.
    """
    grouped_rows: dict[str, list[np.ndarray]] = {}
    grouped_contexts: dict[str, list[CoarseContext]] = {}
    for index, (user_id, features, contexts) in enumerate(requests):
        if user_id not in scorers:
            raise KeyError(f"no scorer available for user {user_id!r}")
        rows = np.atleast_2d(np.asarray(features, dtype=float))
        contexts = list(contexts)
        # Validate per request: mismatches that cancel out across requests
        # for the same user would otherwise silently score windows under
        # the wrong contexts.
        if len(contexts) != len(rows):
            raise ValueError(
                f"request {index} for user {user_id!r} has {len(rows)} feature "
                f"rows but {len(contexts)} context labels"
            )
        grouped_rows.setdefault(user_id, []).append(rows)
        grouped_contexts.setdefault(user_id, []).extend(contexts)
    return {
        user_id: scorers[user_id].score(
            np.vstack(grouped_rows[user_id]), grouped_contexts[user_id]
        )
        for user_id in grouped_rows
    }
