"""Compatibility re-export: the feature store moved to :mod:`repro.devices.store`.

The store is the cloud server's storage substrate, so it now lives in the
``devices`` layer below :mod:`repro.devices.cloud`; this module keeps the
original ``repro.service.store`` import path working.
"""

from repro.devices.store import ANY_CONTEXT, FeatureStore, RingBuffer, StoreStats

__all__ = ["ANY_CONTEXT", "FeatureStore", "RingBuffer", "StoreStats"]
