"""Service telemetry: counters and latency statistics for the fleet path.

Every gateway operation increments named counters and records wall-clock
latencies so the fleet simulator (and operators of a real deployment) can
report throughput, acceptance rates and latency percentiles without any
external dependency.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass
class Counter:
    """A monotonically increasing named counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> int:
        """Add *amount* (default 1) and return the new value."""
        if amount < 0:
            raise ValueError(f"counters only move forward; got amount={amount}")
        self.value += amount
        return self.value


@dataclass
class LatencyRecorder:
    """Accumulates observed durations (seconds) for one named operation.

    Memory stays bounded in a long-lived service: ``count``, ``total`` and
    ``max`` are exact over the recorder's lifetime, while percentiles are
    computed over a sliding window of the most recent ``max_samples``
    observations (recent latency is what an operator acts on).
    """

    name: str
    max_samples: int = 4096
    _samples: list[float] = field(default_factory=list)
    _next: int = 0
    _count: int = 0
    _total: float = 0.0
    _max: float = 0.0

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError("max_samples must be >= 1")

    def record(self, seconds: float) -> None:
        """Record one observed duration."""
        if seconds < 0.0:
            raise ValueError(f"latency cannot be negative; got {seconds}")
        seconds = float(seconds)
        self._count += 1
        self._total += seconds
        self._max = max(self._max, seconds)
        if len(self._samples) < self.max_samples:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.max_samples

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_seconds(self) -> float:
        return self._total

    @property
    def mean_seconds(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max_seconds(self) -> float:
        return self._max

    def percentile_seconds(self, q: float) -> float:
        """The *q*-th percentile (0–100) over the recent sample window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    def summary(self) -> dict[str, float]:
        """Plain-type summary suitable for JSON serialization."""
        return {
            "count": self.count,
            "total_s": self.total_seconds,
            "mean_s": self.mean_seconds,
            "p50_s": self.percentile_seconds(50.0),
            "p95_s": self.percentile_seconds(95.0),
            "p99_s": self.percentile_seconds(99.0),
            "max_s": self.max_seconds,
        }


class TelemetryHub:
    """Registry of named counters and latency recorders.

    Counters and recorders are created on first use, so call sites never
    need to pre-declare the metrics they emit.

    The hub's own entry points (:meth:`increment`, :meth:`record`,
    :meth:`timer`, :meth:`snapshot`, :meth:`reset`) are thread-safe — the
    serving frontend drives one shared hub from concurrently submitting
    callers, so registration and read-modify-write updates serialize under
    one hub lock.  Mutating a :class:`Counter`/:class:`LatencyRecorder`
    obtained via :meth:`counter`/:meth:`latency` directly bypasses that
    lock and is only safe single-threaded.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._latencies: dict[str, LatencyRecorder] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first access."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name=name)
            return self._counters[name]

    def increment(self, name: str, amount: int = 1) -> int:
        """Thread-safe ``counter(name).increment(amount)``."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name=name)
            return counter.increment(amount)

    def latency(self, name: str) -> LatencyRecorder:
        """The latency recorder called *name*, created on first access."""
        with self._lock:
            if name not in self._latencies:
                self._latencies[name] = LatencyRecorder(name=name)
            return self._latencies[name]

    def record(self, name: str, seconds: float) -> None:
        """Thread-safe ``latency(name).record(seconds)``."""
        with self._lock:
            recorder = self._latencies.get(name)
            if recorder is None:
                recorder = self._latencies[name] = LatencyRecorder(name=name)
            recorder.record(seconds)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager recording the wall-clock time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #

    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 if it never fired)."""
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def snapshot(self) -> dict[str, dict]:
        """All metrics as a nested plain-type dictionary."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "latencies": {
                    name: recorder.summary()
                    for name, recorder in sorted(self._latencies.items())
                },
            }

    def reset(self) -> None:
        """Drop every metric (used between fleet simulation phases)."""
        with self._lock:
            self._counters.clear()
            self._latencies.clear()
