"""HTTP transport for the service protocol (stdlib only, no new deps).

PR 2 made the service API a transport-agnostic typed protocol with a
lossless JSON wire codec; this module speaks it over a socket.  A
:class:`ServiceHTTPServer` (a ``ThreadingHTTPServer``) exposes a
:class:`~repro.service.frontend.ServiceFrontend` on these endpoints:

``POST /v1/requests``
    The legacy protocol front door, kept bit-for-bit compatible.  The body
    is either **one** wire-encoded request payload (a JSON object) or a
    **batch** (a JSON array of payloads).  Internally every legacy payload
    rides in a default-caller envelope (full scopes), so /v1 and /v2 share
    one dispatch path.  A single request answers with its wire-encoded
    response and a status code derived from the response type (see
    :func:`status_for_response`); a batch always answers ``200`` with a
    JSON array of per-item responses in submission order — each item is
    individually tagged, so one bad request never poisons its neighbours.

``POST /v2/requests``
    The versioned **data-plane** endpoint: the body is one wire-encoded
    :class:`~repro.service.envelope.Envelope` (or an array of them)
    wrapping an enroll / authenticate / drift-report request.  The
    :class:`~repro.service.envelope.EnvelopeProcessor` authorizes the
    caller's API key against the ``data:write`` scope *before* dispatch —
    a missing/unknown key answers 401, an under-scoped caller or a
    control-plane operation answers 403, with typed codes (see
    :func:`status_for_sealed`).  Responses are sealed
    (``sealed-response``) and echo the envelope's ``request_id``.

``POST /v2/admin``
    The versioned **control-plane** endpoint (single envelope only):
    rollback / snapshot / eviction / detector training under the
    ``admin`` scope.  Data-plane operations are rejected 403
    (``wrong-plane``) — and vice versa on ``/v2/requests`` — so the hot
    path can never reach an admin operation.

``GET /healthz``
    Cheap liveness probe: ``{"status": "ok", ...}`` with uptime and
    request totals.

``GET /metrics``
    The full :class:`~repro.service.telemetry.TelemetryHub` snapshot
    (counters + latency summaries) plus per-caller request/denial counts.

Single data-plane requests are routed through an optional
:class:`~repro.service.frontend.MicroBatchQueue`, so *concurrent HTTP
connections* coalesce into fused scoring passes and inherit its admission
control — a full queue surfaces as a typed
:class:`~repro.service.protocol.ThrottledResponse` with HTTP 429 and a
``Retry-After`` header.  Batch arrays bypass the queue (they already are a
batch) and dispatch straight through ``submit_many``.

The matching :class:`ServiceClient` keeps one persistent HTTP/1.1
connection per client (re-established transparently after a drop) and
offers the same ``submit`` / ``submit_many`` API as the in-process
frontend — in v1 (no key) or v2 (``api_key=...``) mode — so
:class:`~repro.service.fleet.FleetSimulator` can run the whole lifecycle
over real sockets on either API revision.

Run a server from the command line (see ``docs/serving.md``); it
provisions an operator caller and prints its v2 API key once::

    PYTHONPATH=src python -m repro.service.transport --port 8414 --demo-fleet 50
"""

from __future__ import annotations

import argparse
import json
import threading
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from itertools import count
from time import monotonic
from typing import Any, Sequence

from repro.service.envelope import (
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    DeniedResponse,
    Envelope,
    EnvelopeProcessor,
    SealedResponse,
    dumps_envelope,
    dumps_sealed,
    envelope_from_payload,
    envelope_to_payload,
    loads_sealed,
    sealed_from_payload,
    sealed_to_payload,
    unseal,
)
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.protocol import (
    ErrorResponse,
    Request,
    Response,
    ThrottledResponse,
    dumps_request,
    dumps_response,
    is_data_plane,
    loads_response,
    request_kind,
    request_to_payload,
    response_from_payload,
    response_to_payload,
    request_from_payload,
)
from repro.utils import serialization

#: The legacy (v1) protocol endpoint: bare wire requests, default caller.
REQUESTS_PATH = "/v1/requests"
#: The v2 data-plane endpoint: enveloped requests, single + batched.
V2_REQUESTS_PATH = "/v2/requests"
#: The v2 control-plane endpoint: enveloped admin requests (single only).
V2_ADMIN_PATH = "/v2/admin"
#: Liveness endpoint.
HEALTH_PATH = "/healthz"
#: Telemetry endpoint.
METRICS_PATH = "/metrics"

#: HTTP status for an ErrorResponse, by the exception class that caused it.
#: KeyError marks a missing resource (unknown user / version / detector);
#: validation failures are the client's fault; anything else is a server
#: fault.
_STATUS_BY_ERROR = {
    "KeyError": 404,
    "ValueError": 400,
    "TypeError": 400,
    "JSONDecodeError": 400,
    "PermissionError": 403,
}


def status_for_response(response: Response) -> int:
    """The HTTP status code a single wire response answers with.

    * Success responses → ``200``;
    * :class:`~repro.service.protocol.ThrottledResponse` → ``429``;
    * :class:`~repro.service.protocol.ErrorResponse` → ``404`` for missing
      resources (``KeyError``), ``400`` for validation failures
      (``ValueError`` / ``TypeError`` / malformed JSON), ``500`` otherwise.
    """
    if isinstance(response, ThrottledResponse):
        return 429
    if isinstance(response, ErrorResponse):
        return _STATUS_BY_ERROR.get(response.error, 500)
    return 200


def status_for_sealed(sealed: SealedResponse) -> int:
    """The HTTP status a single v2 sealed response answers with.

    A typed caller rejection maps by its code — 401 for missing/unknown
    credentials, 403 for insufficient scope or a wrong-plane dispatch, 400
    for an unsupported ``api_version`` — everything else maps exactly as
    on the v1 endpoint (:func:`status_for_response`).
    """
    if isinstance(sealed.response, DeniedResponse):
        return sealed.response.http_status
    return status_for_response(sealed.response)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP exchanges onto the typed protocol (one instance per request)."""

    # HTTP/1.1 + explicit Content-Length keeps client connections alive, so
    # a ServiceClient reuses one socket for its whole session.
    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request logging into telemetry instead of stderr."""

    def _send_json(self, status: int, body: str, headers: dict[str, str] | None = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_response(self, response: Response) -> None:
        headers = {}
        if isinstance(response, ThrottledResponse):
            headers["Retry-After"] = str(max(1, round(response.retry_after_s + 0.5)))
        self._send_json(status_for_response(response), dumps_response(response), headers)

    def _send_sealed(self, sealed: SealedResponse) -> None:
        headers = {}
        if isinstance(sealed.response, ThrottledResponse):
            headers["Retry-After"] = str(
                max(1, round(sealed.response.retry_after_s + 0.5))
            )
        self._send_json(status_for_sealed(sealed), dumps_sealed(sealed), headers)

    def _client_error(self, kind: str, error: Exception) -> ErrorResponse:
        self.server.telemetry.increment("transport.client_errors")
        return ErrorResponse(
            request_kind=kind, error=type(error).__name__, message=str(error)
        )

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == HEALTH_PATH:
            self._send_json(200, json.dumps(self.server.health(), sort_keys=True))
        elif self.path == METRICS_PATH:
            snapshot = self.server.telemetry.snapshot()
            snapshot["callers"] = self.server.callers.snapshot()
            self._send_json(200, serialization.dumps(snapshot))
        else:
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: GET {self.path}",
                    )
                ),
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path not in (REQUESTS_PATH, V2_REQUESTS_PATH, V2_ADMIN_PATH):
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: POST {self.path}; protocol "
                        f"requests go to {REQUESTS_PATH} (legacy), "
                        f"{V2_REQUESTS_PATH} (enveloped data plane) or "
                        f"{V2_ADMIN_PATH} (enveloped control plane)",
                    )
                ),
            )
            return
        self.server.telemetry.increment("transport.requests")
        with self.server.telemetry.timer("transport.request"):
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = serialization.loads(self.rfile.read(length).decode("utf-8"))
            except Exception as error:  # malformed JSON / encoding
                self._send_response(self._client_error("transport", error))
                return
            if self.path == V2_REQUESTS_PATH:
                self._handle_v2(payload, plane="data", allow_batch=True)
            elif self.path == V2_ADMIN_PATH:
                self._handle_v2(payload, plane="control", allow_batch=False)
            elif isinstance(payload, list):
                self._handle_batch(payload)
            elif isinstance(payload, dict):
                self._handle_single(payload)
            else:
                self._send_response(
                    self._client_error(
                        "transport",
                        TypeError(
                            "request body must be a wire-encoded request object "
                            f"or an array of them, got {type(payload).__name__}"
                        ),
                    )
                )

    def _handle_single(self, payload: dict) -> None:
        kind = str(payload.get("kind", "unknown"))
        try:
            request = request_from_payload(payload)
        except Exception as error:
            self._send_response(self._client_error(kind, error))
            return
        try:
            # Legacy payloads ride in a default-caller envelope, so the v1
            # endpoint shares the processor's dispatch path (and telemetry)
            # with /v2 while staying bit-for-bit compatible on the wire.
            response = self.server.dispatch_legacy(request)
        except Exception as error:  # defensive: the frontend maps errors
            self.server.telemetry.increment("transport.server_errors")
            response = ErrorResponse(
                request_kind=kind, error=type(error).__name__, message=str(error)
            )
        self._send_response(response)

    # ------------------------------------------------------------------ #
    # the v2 (enveloped) endpoints
    # ------------------------------------------------------------------ #

    def _handle_v2(self, payload: Any, plane: str, allow_batch: bool) -> None:
        if isinstance(payload, list):
            if not allow_batch:
                self._send_response(
                    self._client_error(
                        "transport",
                        TypeError(
                            f"POST {V2_ADMIN_PATH} accepts a single envelope; "
                            "admin operations do not batch"
                        ),
                    )
                )
                return
            self._handle_v2_batch(payload, plane)
            return
        if not isinstance(payload, dict):
            self._send_response(
                self._client_error(
                    "transport",
                    TypeError(
                        "request body must be a wire-encoded envelope object"
                        + (" or an array of them" if allow_batch else "")
                        + f", got {type(payload).__name__}"
                    ),
                )
            )
            return
        try:
            envelope = envelope_from_payload(payload)
        except Exception as error:
            self._send_response(self._client_error("envelope", error))
            return
        try:
            sealed = self.server.processor.process(envelope, plane=plane)
        except Exception as error:  # defensive: the processor maps errors
            self.server.telemetry.increment("transport.server_errors")
            sealed = SealedResponse(
                response=ErrorResponse(
                    request_kind="envelope",
                    error=type(error).__name__,
                    message=str(error),
                ),
                request_id=envelope.request_id,
            )
        self._send_sealed(sealed)

    def _handle_v2_batch(self, payloads: list, plane: str) -> None:
        limit = self.server.max_batch_items
        if limit is not None and len(payloads) > limit:
            self.server.telemetry.increment("transport.throttled_batches")
            self._send_response(
                ThrottledResponse(
                    request_kind="batch",
                    reason="batch-too-large",
                    queue_depth=len(payloads),
                    max_depth=limit,
                    retry_after_s=0.0,
                )
            )
            return
        sealed: list[SealedResponse | None] = [None] * len(payloads)
        envelopes: list[Envelope] = []
        positions: list[int] = []
        for index, item in enumerate(payloads):
            try:
                envelopes.append(envelope_from_payload(item))
            except Exception as error:
                # A malformed item answers in place; its request_id (when
                # one was parseable) is still echoed for correlation.
                request_id = (
                    str(item.get("request_id", "")) if isinstance(item, dict) else ""
                )
                self.server.telemetry.increment("transport.client_errors")
                sealed[index] = SealedResponse(
                    response=ErrorResponse(
                        request_kind="envelope",
                        error=type(error).__name__,
                        message=str(error),
                    ),
                    request_id=request_id,
                )
            else:
                positions.append(index)
        try:
            processed = self.server.processor.process_many(envelopes, plane=plane)
        except Exception as error:  # defensive: the processor maps errors
            self.server.telemetry.increment("transport.server_errors")
            processed = [
                SealedResponse(
                    response=ErrorResponse(
                        request_kind="envelope",
                        error=type(error).__name__,
                        message=str(error),
                    ),
                    request_id=envelope.request_id,
                )
                for envelope in envelopes
            ]
        for position, item in zip(positions, processed):
            sealed[position] = item
        body = serialization.dumps([sealed_to_payload(item) for item in sealed])
        # Batches answer 200 with per-item sealed outcomes, mirroring /v1.
        self._send_json(200, body)

    def _handle_batch(self, payloads: list) -> None:
        limit = self.server.max_batch_items
        if limit is not None and len(payloads) > limit:
            # Admission control for batch bodies: the micro-batch queue
            # only bounds single-request submissions, so an unbounded array
            # would be a trivial way around --max-depth.
            self.server.telemetry.increment("transport.throttled_batches")
            self._send_response(
                ThrottledResponse(
                    request_kind="batch",
                    reason="batch-too-large",
                    queue_depth=len(payloads),
                    max_depth=limit,
                    retry_after_s=0.0,
                )
            )
            return
        responses: list[Response | None] = [None] * len(payloads)
        requests: list[Request] = []
        positions: list[int] = []
        for index, item in enumerate(payloads):
            try:
                if not isinstance(item, dict):
                    raise TypeError(
                        f"batch item {index} must be a wire-encoded request "
                        f"object, got {type(item).__name__}"
                    )
                requests.append(request_from_payload(item))
            except Exception as error:
                kind = str(item.get("kind", "unknown")) if isinstance(item, dict) else "unknown"
                responses[index] = self._client_error(kind, error)
            else:
                positions.append(index)
        try:
            dispatched = self.server.dispatch_many_legacy(requests)
        except Exception as error:  # defensive: the frontend maps errors
            self.server.telemetry.increment("transport.server_errors")
            dispatched = [
                ErrorResponse(
                    request_kind="unknown",
                    error=type(error).__name__,
                    message=str(error),
                )
                for _ in requests
            ]
        for position, response in zip(positions, dispatched):
            responses[position] = response
        body = serialization.dumps(
            [response_to_payload(response) for response in responses]
        )
        # A batch always answers 200: each item carries its own outcome
        # (including error-response / throttled-response), mirroring
        # submit_many's one-bad-request-never-poisons-the-batch contract.
        self._send_json(200, body)


class _ServerChannel:
    """The processor's dispatch hook: queue-aware, plane-aware.

    Admitted single data-plane requests go through the server's micro-batch
    queue (cross-connection coalescing + admission control) when one is
    attached; control-plane singles use the frontend's control door; batch
    dispatch goes straight through ``submit_many`` (a batch already is a
    batch).
    """

    def __init__(self, server: "ServiceHTTPServer") -> None:
        self.server = server

    def submit(self, request: Request) -> Response:
        if is_data_plane(request):
            if self.server.queue is not None:
                return self.server.queue.submit(request).result()
            return self.server.frontend.submit(request)
        return self.server.frontend.submit_control(request)

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        return self.server.frontend.submit_many(requests)


class ServiceHTTPServer(ThreadingHTTPServer):
    """Serves a :class:`~repro.service.frontend.ServiceFrontend` over HTTP.

    One handler thread per connection (``ThreadingHTTPServer``); single
    requests from concurrent connections meet again in the optional
    micro-batch queue and coalesce into fused scoring passes.

    Three protocol endpoints are mounted:

    * ``POST /v1/requests`` — the legacy unauthenticated surface, kept
      bit-for-bit compatible: bare wire payloads are internally wrapped in
      a default-caller envelope (full scopes) and dispatched through the
      same processor as /v2;
    * ``POST /v2/requests`` — the enveloped data plane (single + batched),
      requiring a caller key with the ``data:write`` scope;
    * ``POST /v2/admin`` — the enveloped control plane (single), requiring
      the ``admin`` scope.

    Parameters
    ----------
    frontend:
        The typed front door to expose (a fresh one, with a fresh gateway,
        is created when omitted).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    queue:
        Optional :class:`~repro.service.frontend.MicroBatchQueue` wrapping
        *frontend*; single-request POSTs are submitted through it, gaining
        cross-connection coalescing and admission control.  The server
        starts/stops it together with itself.  Pass ``None`` to dispatch
        single requests synchronously on the connection thread.
    max_batch_items:
        Admission bound on the length of a batch-array POST (the queue's
        ``max_depth`` only covers single-request bodies); an oversized
        array answers 429 with a ``batch-too-large``
        :class:`~repro.service.protocol.ThrottledResponse` before any item
        is parsed into a typed request.  ``None`` disables the bound.
    callers:
        Optional :class:`~repro.service.envelope.CallerRegistry` holding
        provisioned API callers.  A fresh one is created when omitted —
        then every /v2 request is rejected 401 until a caller is
        registered (the CLI provisions an operator caller at startup).

    Raises
    ------
    ValueError
        If *queue* wraps a different frontend than *frontend*, or
        ``max_batch_items`` is not positive.
    OSError
        If the address cannot be bound.
    """

    daemon_threads = True
    allow_reuse_address = True

    #: Caller id of the internal default caller legacy /v1 payloads ride on.
    LEGACY_CALLER_ID = "legacy-v1"

    def __init__(
        self,
        frontend: ServiceFrontend | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue: MicroBatchQueue | None = None,
        max_batch_items: int | None = 4096,
        callers: CallerRegistry | None = None,
    ) -> None:
        self.frontend = frontend if frontend is not None else ServiceFrontend()
        if queue is not None and queue.frontend is not self.frontend:
            raise ValueError(
                "conflicting queue and frontend: the supplied queue wraps a "
                "different frontend"
            )
        if max_batch_items is not None and max_batch_items < 1:
            raise ValueError(
                f"max_batch_items must be >= 1 (or None), got {max_batch_items}"
            )
        self.queue = queue
        self.max_batch_items = max_batch_items
        self.telemetry = self.frontend.telemetry
        self.callers = (
            callers
            if callers is not None
            else CallerRegistry(telemetry=self.telemetry)
        )
        # The default caller legacy payloads are wrapped under: full scopes,
        # so /v1 keeps doing everything it always did.  The key never
        # leaves this process.
        self._legacy_api_key = self.callers.register(
            self._unique_caller_id(self.LEGACY_CALLER_ID),
            (SCOPE_DATA_WRITE, SCOPE_ADMIN),
        )
        self.processor = EnvelopeProcessor(
            self.frontend, callers=self.callers, channel=_ServerChannel(self)
        )
        # Cheap sequential ids for internally wrapped legacy requests (the
        # caller never sees them; a uuid4 per /v1 request would be waste).
        self._legacy_ids = count(1)
        self.started_at = monotonic()
        self._serve_thread: threading.Thread | None = None
        super().__init__((host, port), _ServiceRequestHandler)

    def _unique_caller_id(self, base: str) -> str:
        """*base*, suffixed if an operator already registered that id."""
        if base not in self.callers.callers():
            return base
        index = 2
        while f"{base}-{index}" in self.callers.callers():
            index += 1
        return f"{base}-{index}"

    # ------------------------------------------------------------------ #
    # dispatch (shared by single and batch endpoints)
    # ------------------------------------------------------------------ #

    def dispatch(self, request: Request) -> Response:
        """Dispatch one protocol request (through the queue when attached)."""
        return self.dispatch_legacy(request)

    @staticmethod
    def _as_legacy_response(sealed: SealedResponse) -> Response:
        """Unwrap a legacy-envelope outcome into a bare v1 response.

        The default caller carries full scopes, so denial only happens if
        an operator revoked it (a legitimate way to switch the v1 surface
        off); that surfaces as a typed 403 ``ErrorResponse``, never as a
        crashed handler thread.
        """
        if isinstance(sealed.response, DeniedResponse):
            return ErrorResponse(
                request_kind=sealed.response.request_kind,
                error="PermissionError",
                message=f"the legacy /v1 caller was revoked "
                f"({sealed.response.code}); use the authenticated /v2 API",
            )
        return sealed.response

    def dispatch_legacy(self, request: Request) -> Response:
        """Dispatch one bare (v1) request under the default-caller envelope."""
        sealed = self.processor.process(
            Envelope(
                request=request,
                api_key=self._legacy_api_key,
                request_id=f"legacy-{next(self._legacy_ids)}",
            )
        )
        return self._as_legacy_response(sealed)

    def dispatch_many(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch an already-formed batch straight through the frontend."""
        return self.dispatch_many_legacy(requests)

    def dispatch_many_legacy(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch a bare (v1) batch under default-caller envelopes."""
        if not requests:
            return []
        sealed = self.processor.process_many(
            [
                Envelope(
                    request=request,
                    api_key=self._legacy_api_key,
                    request_id=f"legacy-{next(self._legacy_ids)}",
                )
                for request in requests
            ]
        )
        return [self._as_legacy_response(item) for item in sealed]

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload: liveness plus coarse service totals."""
        return {
            "status": "ok",
            "uptime_s": monotonic() - self.started_at,
            "transport_requests": self.telemetry.counter_value("transport.requests"),
            "frontend_requests": self.telemetry.counter_value("frontend.requests"),
            "queue_depth": self.queue.depth if self.queue is not None else 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self.server_address[1]

    def serve_background(self) -> "ServiceHTTPServer":
        """Start serving on a daemon thread; returns ``self`` (idempotent)."""
        if self.queue is not None:
            self.queue.start()
        if self._serve_thread is None or not self._serve_thread.is_alive():
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="service-http-server", daemon=True
            )
            self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, join the background thread and stop the queue."""
        super().shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        if self.queue is not None:
            self.queue.stop()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.serve_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.server_close()


class ServiceClient:
    """Typed protocol client speaking the JSON wire codec over HTTP.

    Presents the same ``submit`` / ``submit_many`` surface as the
    in-process :class:`~repro.service.frontend.ServiceFrontend`, so any
    caller of one can be pointed at the other — including
    :class:`~repro.service.fleet.FleetSimulator`.

    With an ``api_key`` the client speaks the **v2** enveloped API: every
    request is wrapped in an :class:`~repro.service.envelope.Envelope`
    (fresh ``request_id``, the caller credential), data-plane operations
    POST to ``/v2/requests``, control-plane operations to ``/v2/admin``,
    and the echoed ``request_id`` of every sealed response is verified.
    A typed caller rejection (401/403) raises :class:`PermissionError`.
    Without a key the client speaks the legacy ``/v1`` surface unchanged.

    One persistent HTTP/1.1 connection is kept per client and reused across
    calls (re-established transparently once after a connection drop);
    calls serialize on an internal lock, so a single client is thread-safe
    but not concurrent — use one client per thread for parallel load.

    Parameters
    ----------
    host, port:
        The server address (e.g. ``server.port`` of an in-process
        :class:`ServiceHTTPServer`).
    timeout_s:
        Socket timeout for connect/read, in seconds.
    api_key:
        Caller credential; providing one switches the client to the v2
        enveloped endpoints.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8414,
        timeout_s: float = 30.0,
        api_key: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.api_key = api_key
        self._lock = threading.Lock()
        self._connection: HTTPConnection | None = None

    @property
    def api_version(self) -> int:
        """The protocol revision this client speaks (1 without a key)."""
        return 2 if self.api_key is not None else 1

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop the persistent connection (a later call reconnects)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _roundtrip(self, method: str, path: str, body: str | None = None) -> str:
        """One HTTP exchange, reusing (and once re-establishing) the connection.

        Retry policy: a failure while *sending* (connect or write — the
        server cannot have processed anything) is retried once on a fresh
        socket for any method; a failure while *reading the response* is
        retried only for idempotent ``GET``\\ s.  A ``POST`` whose request
        was transmitted is never re-sent — the server may already have
        executed a non-idempotent operation (enroll, drift retrain), and a
        blind replay would duplicate it.

        Raises
        ------
        ConnectionError
            If the server cannot be reached, or a non-idempotent exchange
            failed after its request may have been processed.
        """
        with self._lock:
            last_error: Exception | None = None
            for attempt in range(2):
                if self._connection is None:
                    self._connection = HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                try:
                    self._connection.request(
                        method,
                        path,
                        body=None if body is None else body.encode("utf-8"),
                        headers={"Content-Type": "application/json"},
                    )
                except (HTTPException, OSError) as error:
                    # Send-phase failure (stale keep-alive socket, refused
                    # connect): nothing reached the server, safe to retry.
                    last_error = error
                    self._close_locked()
                    continue
                try:
                    response = self._connection.getresponse()
                    return response.read().decode("utf-8")
                except (HTTPException, OSError) as error:
                    last_error = error
                    self._close_locked()
                    if method != "GET":
                        raise ConnectionError(
                            f"{method} {path} to {self.host}:{self.port} failed "
                            f"after the request was sent ({error}); not retrying "
                            "a possibly-executed non-idempotent operation"
                        ) from error
            raise ConnectionError(
                f"cannot reach service at {self.host}:{self.port}: {last_error}"
            ) from last_error

    # ------------------------------------------------------------------ #
    # protocol surface (mirrors ServiceFrontend)
    # ------------------------------------------------------------------ #

    # The v2 unseal contract (request-id echo check, denial →
    # PermissionError) is defined once in the envelope module and shared
    # with the in-process EnvelopeChannel.
    _unseal = staticmethod(unseal)

    def submit(
        self, request: Request, idempotency_key: str | None = None
    ) -> Response:
        """Send one typed request; returns its typed response.

        In v2 mode the request travels enveloped: data-plane operations go
        to ``/v2/requests``, control-plane operations to ``/v2/admin``, and
        *idempotency_key* (v2 only) makes retries of non-idempotent
        operations safe — the server executes once and replays the recorded
        response.  Transport-level failures (unreachable server,
        non-protocol body) raise; protocol-level failures come back as
        typed :class:`~repro.service.protocol.ErrorResponse` /
        :class:`~repro.service.protocol.ThrottledResponse` values, exactly
        as from the in-process frontend.

        Raises
        ------
        TypeError
            If *request* is not a protocol request.
        ConnectionError
            If the server cannot be reached.
        ValueError
            If the server's answer is not a wire-encoded response (or, in
            v2 mode, echoes the wrong request id), or *idempotency_key* is
            passed without an API key.
        PermissionError
            In v2 mode, when the server rejects this client's caller
            credential or scope (HTTP 401/403).
        """
        if self.api_key is None:
            if idempotency_key is not None:
                raise ValueError(
                    "idempotency keys require the v2 API; construct the "
                    "client with an api_key"
                )
            return loads_response(
                self._roundtrip("POST", REQUESTS_PATH, dumps_request(request))
            )
        envelope = Envelope(
            request=request,
            api_key=self.api_key,
            idempotency_key=idempotency_key,
        )
        path = V2_REQUESTS_PATH if is_data_plane(request) else V2_ADMIN_PATH
        sealed = loads_sealed(
            self._roundtrip("POST", path, dumps_envelope(envelope))
        )
        return self._unseal(envelope, sealed)

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        """Send a batch in one exchange; responses come back in order.

        The server dispatches the array through
        :meth:`ServiceFrontend.submit_many
        <repro.service.frontend.ServiceFrontend.submit_many>`, so
        consecutive authenticate requests coalesce into fused scoring
        passes on the server side exactly as they would in process.  In v2
        mode the batch travels as an array of envelopes on the data-plane
        endpoint — control-plane operations do not batch; send them one at
        a time through :meth:`submit`.

        Raises
        ------
        TypeError
            If any entry is not a protocol request.
        ConnectionError
            If the server cannot be reached.
        ValueError
            If the server's answer is not an array of wire responses, or
            (v2) a control-plane request was included in the batch.
        PermissionError
            In v2 mode, when the server rejects this client's caller
            credential or scope (HTTP 401/403).
        """
        if not requests:
            return []
        if self.api_key is None:
            body = serialization.dumps(
                [request_to_payload(request) for request in requests]
            )
            payload = serialization.loads(self._roundtrip("POST", REQUESTS_PATH, body))
            if not isinstance(payload, list) or len(payload) != len(requests):
                raise ValueError(
                    f"expected {len(requests)} wire responses, got "
                    f"{type(payload).__name__}"
                    + (f" of length {len(payload)}" if isinstance(payload, list) else "")
                )
            return [response_from_payload(item) for item in payload]
        for request in requests:
            if not is_data_plane(request):
                raise ValueError(
                    f"{request_kind(request)!r} is a control-plane operation; "
                    "v2 batches carry data-plane requests only — submit() "
                    "admin operations one at a time"
                )
        envelopes = [
            Envelope(request=request, api_key=self.api_key) for request in requests
        ]
        body = serialization.dumps(
            [envelope_to_payload(envelope) for envelope in envelopes]
        )
        payload = serialization.loads(
            self._roundtrip("POST", V2_REQUESTS_PATH, body)
        )
        if not isinstance(payload, list) or len(payload) != len(requests):
            raise ValueError(
                f"expected {len(requests)} sealed wire responses, got "
                f"{type(payload).__name__}"
                + (f" of length {len(payload)}" if isinstance(payload, list) else "")
            )
        return [
            self._unseal(envelope, sealed_from_payload(item))
            for envelope, item in zip(envelopes, payload)
        ]

    def health(self) -> dict[str, Any]:
        """The server's ``/healthz`` payload."""
        return json.loads(self._roundtrip("GET", HEALTH_PATH))

    def metrics(self) -> dict[str, Any]:
        """The server's ``/metrics`` telemetry snapshot."""
        return serialization.loads(self._roundtrip("GET", METRICS_PATH))


# --------------------------------------------------------------------- #
# command line
# --------------------------------------------------------------------- #


def _build_demo_frontend(n_users: int, seed: int) -> ServiceFrontend:
    """A frontend whose gateway serves a freshly enrolled synthetic fleet."""
    from repro.service.fleet import FleetConfig, FleetSimulator

    simulator = FleetSimulator(FleetConfig(n_users=n_users, seed=seed))
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator.frontend


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: serve a frontend over HTTP until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.transport",
        description="Serve the authentication service protocol over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8414, help="TCP port (0 = pick free)")
    parser.add_argument(
        "--registry-root",
        default=None,
        help="directory of a persisted ModelRegistry to load and serve",
    )
    parser.add_argument(
        "--demo-fleet",
        type=int,
        default=0,
        metavar="N",
        help="pre-enroll N synthetic fleet users (feature columns f00..f11) "
        "so clients can authenticate immediately",
    )
    parser.add_argument("--seed", type=int, default=7, help="demo-fleet seed")
    parser.add_argument(
        "--max-batch", type=int, default=256, help="micro-batch queue slice size"
    )
    parser.add_argument(
        "--max-delay-ms",
        type=float,
        default=5.0,
        help="micro-batch queue flush delay (milliseconds)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=1024,
        help="admission-control bound on pending requests (0 = unbounded)",
    )
    parser.add_argument(
        "--overflow",
        choices=MicroBatchQueue.OVERFLOW_POLICIES,
        default="reject",
        help="what a full queue does with new submissions",
    )
    parser.add_argument(
        "--max-batch-items",
        type=int,
        default=4096,
        help="admission bound on batch-array POST length (0 = unbounded)",
    )
    parser.add_argument(
        "--no-queue",
        action="store_true",
        help="dispatch single requests synchronously instead of micro-batching",
    )
    parser.add_argument(
        "--caller-id",
        default="operator",
        help="caller id provisioned at startup for the v2 API (its key is "
        "printed once)",
    )
    parser.add_argument(
        "--caller-scopes",
        default="data:write,admin",
        help="comma-separated scopes of the provisioned caller "
        "(subset of: data:write, admin)",
    )
    args = parser.parse_args(argv)

    if args.demo_fleet:
        print(f"enrolling a {args.demo_fleet}-user demo fleet...", flush=True)
        frontend = _build_demo_frontend(args.demo_fleet, args.seed)
    elif args.registry_root is not None:
        from repro.service.gateway import AuthenticationGateway
        from repro.service.registry import ModelRegistry

        registry = ModelRegistry(root=args.registry_root)
        loaded = registry.load()
        print(f"loaded {loaded} bundle(s) from {args.registry_root}", flush=True)
        frontend = ServiceFrontend(AuthenticationGateway(registry=registry))
    else:
        frontend = ServiceFrontend()

    queue = (
        None
        if args.no_queue
        else MicroBatchQueue(
            frontend,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            max_depth=args.max_depth or None,
            overflow=args.overflow,
        )
    )
    with ServiceHTTPServer(
        frontend,
        host=args.host,
        port=args.port,
        queue=queue,
        max_batch_items=args.max_batch_items or None,
    ) as server:
        scopes = tuple(
            scope.strip() for scope in args.caller_scopes.split(",") if scope.strip()
        )
        api_key = server.callers.register(args.caller_id, scopes)
        print(
            f"serving {REQUESTS_PATH} (legacy), {V2_REQUESTS_PATH} and "
            f"{V2_ADMIN_PATH} on http://{args.host}:{server.port} "
            f"(healthz: {HEALTH_PATH}, metrics: {METRICS_PATH}); Ctrl-C stops",
            flush=True,
        )
        print(
            f"v2 caller {args.caller_id!r} (scopes: {', '.join(scopes)}) "
            f"API key: {api_key}",
            flush=True,
        )
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("\nshutting down...", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
