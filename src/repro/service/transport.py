"""HTTP transport for the service protocol (stdlib only, no new deps).

PR 2 made the service API a transport-agnostic typed protocol with a
lossless JSON wire codec; this module speaks it over a socket.  A
:class:`ServiceHTTPServer` (a ``ThreadingHTTPServer``) exposes a
:class:`~repro.service.frontend.ServiceFrontend` on these endpoints:

``POST /v1/requests``
    The legacy protocol front door, kept bit-for-bit compatible.  The body
    is either **one** wire-encoded request payload (a JSON object) or a
    **batch** (a JSON array of payloads).  Internally every legacy payload
    rides in a default-caller envelope (full scopes), so /v1 and /v2 share
    one dispatch path.  A single request answers with its wire-encoded
    response and a status code derived from the response type (see
    :func:`status_for_response`); a batch always answers ``200`` with a
    JSON array of per-item responses in submission order — each item is
    individually tagged, so one bad request never poisons its neighbours.

``POST /v2/requests``
    The versioned **data-plane** endpoint: the body is one wire-encoded
    :class:`~repro.service.envelope.Envelope` (or an array of them)
    wrapping an enroll / authenticate / drift-report request.  The
    :class:`~repro.service.envelope.EnvelopeProcessor` authorizes the
    caller's API key against the ``data:write`` scope *before* dispatch —
    a missing/unknown key answers 401, an under-scoped caller or a
    control-plane operation answers 403, with typed codes (see
    :func:`status_for_sealed`).  Responses are sealed
    (``sealed-response``) and echo the envelope's ``request_id``.

    The endpoint is **content-negotiated**: a body of type
    ``application/x-repro-batch`` carries one or more **binary columnar
    frames** (:mod:`repro.service.wirebin`) instead of JSON — a whole
    batch of data-plane requests as one frame whose feature vectors travel
    in a single contiguous float64 block.  The server authorizes each
    frame once for all of its requests, decodes the columns as zero-copy
    ``np.frombuffer`` views, and feeds authenticate frames straight into
    the frontend's fused scoring pass
    (:meth:`~repro.service.frontend.ServiceFrontend.submit_columns`)
    without materializing per-request objects.  Chunked uploads
    (``Transfer-Encoding: chunked``) decode and dispatch frame by frame,
    so a 100k-window stream is served with memory bounded by one chunk.
    JSON bodies — and the ``/v1`` surface — are bit-for-bit untouched.

``POST /v2/admin``
    The versioned **control-plane** endpoint (single envelope only):
    rollback / snapshot / eviction / detector training under the
    ``admin`` scope.  Data-plane operations are rejected 403
    (``wrong-plane``) — and vice versa on ``/v2/requests`` — so the hot
    path can never reach an admin operation.

``GET /healthz``
    Cheap liveness probe: ``{"status": "ok", ...}`` with uptime and
    request totals.

``GET /metrics``
    The full :class:`~repro.service.telemetry.TelemetryHub` snapshot
    (counters + latency summaries) plus per-caller request/denial counts.

Single data-plane requests are routed through an optional
:class:`~repro.service.frontend.MicroBatchQueue`, so *concurrent HTTP
connections* coalesce into fused scoring passes and inherit its admission
control — a full queue surfaces as a typed
:class:`~repro.service.protocol.ThrottledResponse` with HTTP 429 and a
``Retry-After`` header.  Batch arrays bypass the queue (they already are a
batch) and dispatch straight through ``submit_many``.

The matching :class:`ServiceClient` keeps one persistent HTTP/1.1
connection per client (re-established transparently after a drop) and
offers the same ``submit`` / ``submit_many`` API as the in-process
frontend — in v1 (no key) or v2 (``api_key=...``) mode — so
:class:`~repro.service.fleet.FleetSimulator` can run the whole lifecycle
over real sockets on either API revision.

Run a server from the command line (see ``docs/serving.md``); it
provisions an operator caller and prints its v2 API key once::

    PYTHONPATH=src python -m repro.service.transport --port 8414 --demo-fleet 50
"""

from __future__ import annotations

import argparse
import json
import shutil
import signal
import tempfile
import threading
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from itertools import count
from time import monotonic, perf_counter, sleep
from typing import Any, Sequence

from repro.service import wirebin
from repro.service.envelope import (
    API_VERSION,
    CODE_UNSUPPORTED_VERSION,
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    CallerRegistry,
    DeniedResponse,
    Envelope,
    EnvelopeProcessor,
    SealedResponse,
    dumps_envelope,
    dumps_sealed,
    envelope_from_payload,
    envelope_to_payload,
    loads_sealed,
    sealed_from_payload,
    sealed_to_payload,
    unseal,
)
from repro.service.frontend import MicroBatchQueue, ServiceFrontend
from repro.service.protocol import (
    ErrorResponse,
    Request,
    Response,
    ThrottledResponse,
    dumps_request,
    dumps_response,
    is_data_plane,
    loads_response,
    request_kind,
    request_to_payload,
    response_from_payload,
    response_to_payload,
    request_from_payload,
)
from repro.service.telemetry import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.service.tracing import (
    SPAN_ADMISSION,
    SPAN_QUEUE_WAIT,
    SPAN_RESPONSE_FRAMING,
    TRACE_HEADER,
    TraceContext,
    Tracer,
)
from repro.utils import serialization

#: The legacy (v1) protocol endpoint: bare wire requests, default caller.
REQUESTS_PATH = "/v1/requests"
#: The v2 data-plane endpoint: enveloped requests, single + batched.
V2_REQUESTS_PATH = "/v2/requests"
#: The v2 control-plane endpoint: enveloped admin requests (single only).
V2_ADMIN_PATH = "/v2/admin"
#: Liveness/readiness endpoint.
HEALTH_PATH = "/healthz"
#: Request header carrying the client's total deadline, in seconds.  The
#: shard router bounds its retry-with-backoff budget by this (capped by
#: its own policy), so a client that can only wait 2 s never has the
#: router retrying on its behalf for 10.
DEADLINE_HEADER = "X-Deadline-S"
#: Telemetry endpoint.
METRICS_PATH = "/metrics"
#: Mergeable histogram families as JSON — the shard router scrapes this
#: (alongside METRICS_PATH) to aggregate fleet-wide quantiles; kept off
#: the main snapshot so its JSON surface stays byte-for-byte unchanged.
HISTOGRAMS_PATH = "/metrics/histograms"

#: HTTP status for an ErrorResponse, by the exception class that caused it.
#: KeyError marks a missing resource (unknown user / version / detector);
#: validation failures are the client's fault; anything else is a server
#: fault.
_STATUS_BY_ERROR = {
    "KeyError": 404,
    "ValueError": 400,
    "TypeError": 400,
    "JSONDecodeError": 400,
    "PermissionError": 403,
}


def status_for_response(response: Response) -> int:
    """The HTTP status code a single wire response answers with.

    * Success responses → ``200``;
    * :class:`~repro.service.protocol.ThrottledResponse` → ``429``;
    * :class:`~repro.service.protocol.ErrorResponse` → ``404`` for missing
      resources (``KeyError``), ``400`` for validation failures
      (``ValueError`` / ``TypeError`` / malformed JSON), ``500`` otherwise.
    """
    if isinstance(response, ThrottledResponse):
        return 429
    if isinstance(response, ErrorResponse):
        return _STATUS_BY_ERROR.get(response.error, 500)
    return 200


def status_for_sealed(sealed: SealedResponse) -> int:
    """The HTTP status a single v2 sealed response answers with.

    A typed caller rejection maps by its code — 401 for missing/unknown
    credentials, 403 for insufficient scope or a wrong-plane dispatch, 400
    for an unsupported ``api_version`` — everything else maps exactly as
    on the v1 endpoint (:func:`status_for_response`).
    """
    if isinstance(sealed.response, DeniedResponse):
        return sealed.response.http_status
    return status_for_response(sealed.response)


class DeadlineExceeded(ConnectionError):
    """A client-side deadline expired before the server answered.

    Raised by :class:`ServiceClient` whenever a socket timeout fires —
    connect, send or read — so callers always see a typed error instead of
    a bare ``socket.timeout``.  Subclasses :class:`ConnectionError`, so
    existing ``except ConnectionError`` handlers (and the chaos harness's
    outcome taxonomy) keep working unchanged.
    """

    def __init__(self, message: str, timeout_s: float | None = None) -> None:
        super().__init__(message)
        self.timeout_s = timeout_s


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP exchanges onto the typed protocol (one instance per request)."""

    # HTTP/1.1 + explicit Content-Length keeps client connections alive, so
    # a ServiceClient reuses one socket for its whole session.
    protocol_version = "HTTP/1.1"
    server: "ServiceHTTPServer"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request logging into telemetry instead of stderr."""

    def _send_json(self, status: int, body: str, headers: dict[str, str] | None = None) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_response(
        self, response: Response, trace: TraceContext | None = None
    ) -> None:
        headers = {}
        if isinstance(response, ThrottledResponse):
            headers["Retry-After"] = str(max(1, round(response.retry_after_s + 0.5)))
        if trace is None:
            self._send_json(
                status_for_response(response), dumps_response(response), headers
            )
            return
        headers[TRACE_HEADER] = trace.trace_id
        started = perf_counter()
        body = dumps_response(response)
        trace.add_span(SPAN_RESPONSE_FRAMING, perf_counter() - started)
        # Finish (and export) before the socket write so a client that saw
        # the response is guaranteed to find the trace event exported.
        self.server.tracer.finish(trace)
        self._send_json(status_for_response(response), body, headers)

    def _send_sealed(
        self, sealed: SealedResponse, trace: TraceContext | None = None
    ) -> None:
        headers = {}
        if isinstance(sealed.response, ThrottledResponse):
            headers["Retry-After"] = str(
                max(1, round(sealed.response.retry_after_s + 0.5))
            )
        if trace is None:
            self._send_json(status_for_sealed(sealed), dumps_sealed(sealed), headers)
            return
        headers[TRACE_HEADER] = trace.trace_id
        started = perf_counter()
        body = dumps_sealed(sealed)
        trace.add_span(SPAN_RESPONSE_FRAMING, perf_counter() - started)
        self.server.tracer.finish(trace)
        self._send_json(status_for_sealed(sealed), body, headers)

    def _start_http_trace(
        self,
        request: Request,
        trace_id: str | None = None,
        request_id: str | None = None,
    ) -> TraceContext | None:
        """Mint (or adopt) a trace at the HTTP door and bind it to *request*.

        The ``X-Trace-Id`` header wins over an envelope-supplied id; either
        marks the trace client-requested (always sampled).  The transport
        owns the returned trace: it finishes it after response framing.
        """
        tracer = self.server.tracer
        if tracer is None:
            return None
        trace = tracer.start(
            "http",
            trace_id=self.headers.get(TRACE_HEADER) or trace_id,
            request_id=request_id,
            user_id=getattr(request, "user_id", None),
        )
        if trace is not None:
            tracer.bind(request, trace)
        return trace

    def _client_error(self, kind: str, error: Exception) -> ErrorResponse:
        self.server.telemetry.increment("transport.client_errors")
        return ErrorResponse(
            request_kind=kind, error=type(error).__name__, message=str(error)
        )

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == HEALTH_PATH:
            self._send_json(200, json.dumps(self.server.health(), sort_keys=True))
        elif self.path == METRICS_PATH:
            accept = (self.headers.get("Accept") or "").lower()
            if "text/plain" in accept:
                # Prometheus text exposition via content negotiation; the
                # default JSON snapshot below stays byte-for-byte unchanged.
                payload = render_prometheus(self.server.telemetry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
                return
            snapshot = self.server.telemetry.snapshot()
            snapshot["callers"] = self.server.callers.snapshot()
            self._send_json(200, serialization.dumps(snapshot))
        elif self.path == HISTOGRAMS_PATH:
            self._send_json(
                200,
                serialization.dumps(self.server.telemetry.histograms_snapshot()),
            )
        else:
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: GET {self.path}",
                    )
                ),
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path not in (REQUESTS_PATH, V2_REQUESTS_PATH, V2_ADMIN_PATH):
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: POST {self.path}; protocol "
                        f"requests go to {REQUESTS_PATH} (legacy), "
                        f"{V2_REQUESTS_PATH} (enveloped data plane) or "
                        f"{V2_ADMIN_PATH} (enveloped control plane)",
                    )
                ),
            )
            return
        self.server.telemetry.increment("transport.requests")
        with self.server.telemetry.timer("transport.request"):
            content_type = (
                (self.headers.get("Content-Type") or "")
                .split(";", 1)[0]
                .strip()
                .lower()
            )
            if content_type == wirebin.CONTENT_TYPE:
                # Content-type negotiation: the binary columnar codec rides
                # the same data-plane endpoint; JSON bodies are untouched.
                if self.path != V2_REQUESTS_PATH:
                    # The (possibly chunked) frame body is left unread, so
                    # this connection cannot serve another exchange.
                    self.close_connection = True
                    self._send_response(
                        self._client_error(
                            "transport",
                            TypeError(
                                f"binary batch frames ({wirebin.CONTENT_TYPE}) "
                                f"are accepted only at {V2_REQUESTS_PATH}"
                            ),
                        )
                    )
                    return
                self._handle_v2_binary()
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = serialization.loads(self.rfile.read(length).decode("utf-8"))
            except Exception as error:  # malformed JSON / encoding
                self._send_response(self._client_error("transport", error))
                return
            if self.path == V2_REQUESTS_PATH:
                self._handle_v2(payload, plane="data", allow_batch=True)
            elif self.path == V2_ADMIN_PATH:
                self._handle_v2(payload, plane="control", allow_batch=False)
            elif isinstance(payload, list):
                self._handle_batch(payload)
            elif isinstance(payload, dict):
                self._handle_single(payload)
            else:
                self._send_response(
                    self._client_error(
                        "transport",
                        TypeError(
                            "request body must be a wire-encoded request object "
                            f"or an array of them, got {type(payload).__name__}"
                        ),
                    )
                )

    def _handle_single(self, payload: dict) -> None:
        kind = str(payload.get("kind", "unknown"))
        try:
            request = request_from_payload(payload)
        except Exception as error:
            self._send_response(self._client_error(kind, error))
            return
        trace = self._start_http_trace(request)
        try:
            # Legacy payloads ride in a default-caller envelope, so the v1
            # endpoint shares the processor's dispatch path (and telemetry)
            # with /v2 while staying bit-for-bit compatible on the wire.
            response = self.server.dispatch_legacy(request)
        except Exception as error:  # defensive: the frontend maps errors
            self.server.telemetry.increment("transport.server_errors")
            response = ErrorResponse(
                request_kind=kind, error=type(error).__name__, message=str(error)
            )
        self._send_response(response, trace)

    # ------------------------------------------------------------------ #
    # the v2 (enveloped) endpoints
    # ------------------------------------------------------------------ #

    def _handle_v2(self, payload: Any, plane: str, allow_batch: bool) -> None:
        if isinstance(payload, list):
            if not allow_batch:
                self._send_response(
                    self._client_error(
                        "transport",
                        TypeError(
                            f"POST {V2_ADMIN_PATH} accepts a single envelope; "
                            "admin operations do not batch"
                        ),
                    )
                )
                return
            self._handle_v2_batch(payload, plane)
            return
        if not isinstance(payload, dict):
            self._send_response(
                self._client_error(
                    "transport",
                    TypeError(
                        "request body must be a wire-encoded envelope object"
                        + (" or an array of them" if allow_batch else "")
                        + f", got {type(payload).__name__}"
                    ),
                )
            )
            return
        try:
            envelope = envelope_from_payload(payload)
        except Exception as error:
            self._send_response(self._client_error("envelope", error))
            return
        trace = self._start_http_trace(
            envelope.request,
            trace_id=envelope.trace_id,
            request_id=envelope.request_id,
        )
        try:
            sealed = self.server.processor.process(envelope, plane=plane)
        except Exception as error:  # defensive: the processor maps errors
            self.server.telemetry.increment("transport.server_errors")
            sealed = SealedResponse(
                response=ErrorResponse(
                    request_kind="envelope",
                    error=type(error).__name__,
                    message=str(error),
                ),
                request_id=envelope.request_id,
            )
        self._send_sealed(sealed, trace)

    def _handle_v2_batch(self, payloads: list, plane: str) -> None:
        limit = self.server.max_batch_items
        if limit is not None and len(payloads) > limit:
            self.server.telemetry.increment("transport.throttled_batches")
            self._send_response(
                ThrottledResponse(
                    request_kind="batch",
                    reason="batch-too-large",
                    queue_depth=len(payloads),
                    max_depth=limit,
                    retry_after_s=0.0,
                )
            )
            return
        sealed: list[SealedResponse | None] = [None] * len(payloads)
        envelopes: list[Envelope] = []
        positions: list[int] = []
        for index, item in enumerate(payloads):
            try:
                envelopes.append(envelope_from_payload(item))
            except Exception as error:
                # A malformed item answers in place; its request_id (when
                # one was parseable) is still echoed for correlation.
                request_id = (
                    str(item.get("request_id", "")) if isinstance(item, dict) else ""
                )
                self.server.telemetry.increment("transport.client_errors")
                sealed[index] = SealedResponse(
                    response=ErrorResponse(
                        request_kind="envelope",
                        error=type(error).__name__,
                        message=str(error),
                    ),
                    request_id=request_id,
                )
            else:
                positions.append(index)
        try:
            processed = self.server.processor.process_many(envelopes, plane=plane)
        except Exception as error:  # defensive: the processor maps errors
            self.server.telemetry.increment("transport.server_errors")
            processed = [
                SealedResponse(
                    response=ErrorResponse(
                        request_kind="envelope",
                        error=type(error).__name__,
                        message=str(error),
                    ),
                    request_id=envelope.request_id,
                )
                for envelope in envelopes
            ]
        for position, item in zip(positions, processed):
            sealed[position] = item
        body = serialization.dumps([sealed_to_payload(item) for item in sealed])
        # Batches answer 200 with per-item sealed outcomes, mirroring /v1.
        self._send_json(200, body)

    # ------------------------------------------------------------------ #
    # the binary columnar endpoint (content-negotiated on /v2/requests)
    # ------------------------------------------------------------------ #

    def _handle_v2_binary(self) -> None:
        """Decode and dispatch binary columnar frames, incrementally.

        The body is one frame (``submit_many``) or a concatenated stream of
        them (``submit_stream`` uses HTTP chunked transfer).  Frames are
        read, authorized and dispatched **one at a time** straight off the
        socket — request-side memory is bounded by the largest single
        frame, not the upload — and each answers with its own response
        frame, in order.  Accumulated response frames spool to a temporary
        file beyond a small threshold (writing them to the socket mid-read
        could deadlock against a client that sends its whole stream before
        reading), so response-side memory is bounded too.  A corrupt or
        truncated frame answers a typed 400 ``error-response`` (JSON) and
        closes the connection, never a stack trace.
        """
        if (self.headers.get("Transfer-Encoding") or "").lower() == "chunked":
            read = _ChunkedBodyReader(self.rfile).read
        else:
            read = _BoundedBodyReader(
                self.rfile, int(self.headers.get("Content-Length", 0) or 0)
            ).read
        client_trace_id = self.headers.get(TRACE_HEADER)
        frames = 0
        rejection: DeniedResponse | ThrottledResponse | None = None
        with tempfile.SpooledTemporaryFile(max_size=1 << 23) as frames_out:
            try:
                for frame in wirebin.iter_request_frames(read):
                    body, rejection = self.server.dispatch_frame(
                        frame, trace_id=client_trace_id
                    )
                    frames += 1
                    frames_out.write(body)
            except ValueError as error:
                # The remaining body is unreadable after a torn frame, so
                # the connection cannot be reused for a next exchange.
                self.close_connection = True
                if frames:
                    # Frames already executed (possibly non-idempotent
                    # enrollments): deliver their responses, then a typed
                    # stream-abort marker, so the caller can reconcile
                    # instead of blindly re-submitting everything.
                    self.server.telemetry.increment("transport.client_errors")
                    frames_out.write(
                        wirebin.encode_error_frame(
                            ErrorResponse(
                                request_kind="binary-frame",
                                error=type(error).__name__,
                                message=f"stream aborted after {frames} "
                                f"dispatched frame(s): {error}",
                            )
                        )
                    )
                else:
                    self._send_response(self._client_error("binary-frame", error))
                    return
            except Exception as error:  # defensive: dispatch maps errors
                self.server.telemetry.increment("transport.server_errors")
                self.close_connection = True
                self._send_response(
                    ErrorResponse(
                        request_kind="binary-frame",
                        error=type(error).__name__,
                        message=str(error),
                    )
                )
                return
            # A single rejected frame answers with the rejection's mapped
            # status (429 + Retry-After / 401 / 403), mirroring the JSON
            # surface; a multi-frame stream answers 200 — its frames carry
            # mixed per-frame outcomes that one status cannot express.
            status = 200
            headers: dict[str, str] = {}
            if client_trace_id and self.server.tracer is not None:
                headers[TRACE_HEADER] = client_trace_id
            if frames == 1 and rejection is not None:
                if isinstance(rejection, ThrottledResponse):
                    status = 429
                    headers["Retry-After"] = str(
                        max(1, round(rejection.retry_after_s + 0.5))
                    )
                else:
                    status = rejection.http_status
            length = frames_out.tell()
            frames_out.seek(0)
            self.send_response(status)
            self.send_header("Content-Type", wirebin.CONTENT_TYPE)
            self.send_header("Content-Length", str(length))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            shutil.copyfileobj(frames_out, self.wfile)

    def _handle_batch(self, payloads: list) -> None:
        limit = self.server.max_batch_items
        if limit is not None and len(payloads) > limit:
            # Admission control for batch bodies: the micro-batch queue
            # only bounds single-request submissions, so an unbounded array
            # would be a trivial way around --max-depth.
            self.server.telemetry.increment("transport.throttled_batches")
            self._send_response(
                ThrottledResponse(
                    request_kind="batch",
                    reason="batch-too-large",
                    queue_depth=len(payloads),
                    max_depth=limit,
                    retry_after_s=0.0,
                )
            )
            return
        responses: list[Response | None] = [None] * len(payloads)
        requests: list[Request] = []
        positions: list[int] = []
        for index, item in enumerate(payloads):
            try:
                if not isinstance(item, dict):
                    raise TypeError(
                        f"batch item {index} must be a wire-encoded request "
                        f"object, got {type(item).__name__}"
                    )
                requests.append(request_from_payload(item))
            except Exception as error:
                kind = str(item.get("kind", "unknown")) if isinstance(item, dict) else "unknown"
                responses[index] = self._client_error(kind, error)
            else:
                positions.append(index)
        try:
            dispatched = self.server.dispatch_many_legacy(requests)
        except Exception as error:  # defensive: the frontend maps errors
            self.server.telemetry.increment("transport.server_errors")
            dispatched = [
                ErrorResponse(
                    request_kind="unknown",
                    error=type(error).__name__,
                    message=str(error),
                )
                for _ in requests
            ]
        for position, response in zip(positions, dispatched):
            responses[position] = response
        body = serialization.dumps(
            [response_to_payload(response) for response in responses]
        )
        # A batch always answers 200: each item carries its own outcome
        # (including error-response / throttled-response), mirroring
        # submit_many's one-bad-request-never-poisons-the-batch contract.
        self._send_json(200, body)


class _BoundedBodyReader:
    """``read(n)`` over a Content-Length request body (never over-reads)."""

    def __init__(self, rfile: Any, length: int) -> None:
        self._rfile = rfile
        self._remaining = max(0, length)

    def read(self, n: int) -> bytes:
        if self._remaining <= 0 or n <= 0:
            return b""
        chunk = self._rfile.read(min(n, self._remaining))
        self._remaining -= len(chunk)
        return chunk


class _ChunkedBodyReader:
    """``read(n)`` over a ``Transfer-Encoding: chunked`` request body.

    ``http.server`` does not decode chunked uploads itself; streaming
    clients need it (a 100k-window upload's total length is unknown when
    the first frame is sent).  Malformed chunk framing raises
    ``ValueError`` — mapped to the same typed 400 as a corrupt frame.
    """

    def __init__(self, rfile: Any) -> None:
        self._rfile = rfile
        self._chunk_remaining = 0
        self._done = False

    def _next_chunk(self) -> None:
        line = self._rfile.readline(1026)
        if not line:
            # Only the 0-size terminal chunk ends a chunked body cleanly; a
            # bare EOF here means the client died mid-upload.  Surfacing it
            # keeps partial streams on the typed-400 path instead of being
            # silently accepted as complete.
            self._done = True
            raise ValueError(
                "malformed chunked encoding: stream ended before the "
                "terminal chunk"
            )
        token = line.split(b";", 1)[0].strip()
        try:
            size = int(token, 16)
        except ValueError:
            raise ValueError(
                f"malformed chunked encoding: bad chunk size {token!r}"
            ) from None
        if size == 0:
            # Trailer section: discard header lines until the blank line.
            while True:
                trailer = self._rfile.readline(1026)
                if trailer in (b"\r\n", b"\n", b""):
                    break
            self._done = True
            return
        self._chunk_remaining = size

    def read(self, n: int) -> bytes:
        if self._done or n <= 0:
            return b""
        if self._chunk_remaining == 0:
            self._next_chunk()
            if self._done:
                return b""
        chunk = self._rfile.read(min(n, self._chunk_remaining))
        if not chunk:
            self._done = True
            raise ValueError("malformed chunked encoding: truncated chunk")
        self._chunk_remaining -= len(chunk)
        if self._chunk_remaining == 0:
            if self._rfile.read(2) != b"\r\n":
                self._done = True
                raise ValueError(
                    "malformed chunked encoding: missing CRLF after chunk"
                )
        return chunk


class _ServerChannel:
    """The processor's dispatch hook: queue-aware, plane-aware.

    Admitted single data-plane requests go through the server's micro-batch
    queue (cross-connection coalescing + admission control) when one is
    attached; control-plane singles use the frontend's control door; batch
    dispatch goes straight through ``submit_many`` (a batch already is a
    batch).
    """

    def __init__(self, server: "ServiceHTTPServer") -> None:
        self.server = server

    def submit(self, request: Request) -> Response:
        if is_data_plane(request):
            if self.server.queue is not None:
                return self.server.queue.submit(request).result()
            return self.server.frontend.submit(request)
        return self.server.frontend.submit_control(request)

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        return self.server.frontend.submit_many(requests)


class ServiceHTTPServer(ThreadingHTTPServer):
    """Serves a :class:`~repro.service.frontend.ServiceFrontend` over HTTP.

    One handler thread per connection (``ThreadingHTTPServer``); single
    requests from concurrent connections meet again in the optional
    micro-batch queue and coalesce into fused scoring passes.

    Three protocol endpoints are mounted:

    * ``POST /v1/requests`` — the legacy unauthenticated surface, kept
      bit-for-bit compatible: bare wire payloads are internally wrapped in
      a default-caller envelope (full scopes) and dispatched through the
      same processor as /v2;
    * ``POST /v2/requests`` — the enveloped data plane (single + batched),
      requiring a caller key with the ``data:write`` scope;
    * ``POST /v2/admin`` — the enveloped control plane (single), requiring
      the ``admin`` scope.

    Parameters
    ----------
    frontend:
        The typed front door to expose (a fresh one, with a fresh gateway,
        is created when omitted).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    queue:
        Optional :class:`~repro.service.frontend.MicroBatchQueue` wrapping
        *frontend*; single-request POSTs are submitted through it, gaining
        cross-connection coalescing and admission control.  The server
        starts/stops it together with itself.  Pass ``None`` to dispatch
        single requests synchronously on the connection thread.
    max_batch_items:
        Admission bound on the length of a batch-array POST (the queue's
        ``max_depth`` only covers single-request bodies); an oversized
        array answers 429 with a ``batch-too-large``
        :class:`~repro.service.protocol.ThrottledResponse` before any item
        is parsed into a typed request.  ``None`` disables the bound.
    callers:
        Optional :class:`~repro.service.envelope.CallerRegistry` holding
        provisioned API callers.  A fresh one is created when omitted —
        then every /v2 request is rejected 401 until a caller is
        registered (the CLI provisions an operator caller at startup).

    Raises
    ------
    ValueError
        If *queue* wraps a different frontend than *frontend*, or
        ``max_batch_items`` is not positive.
    OSError
        If the address cannot be bound.
    """

    daemon_threads = True
    allow_reuse_address = True
    # The stdlib listen backlog of 5 drops connections when a pooled
    # client (or the shard router) opens its whole pool in one burst.
    request_queue_size = 128

    #: Caller id of the internal default caller legacy /v1 payloads ride on.
    LEGACY_CALLER_ID = "legacy-v1"

    def __init__(
        self,
        frontend: ServiceFrontend | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue: MicroBatchQueue | None = None,
        max_batch_items: int | None = 4096,
        callers: CallerRegistry | None = None,
        tracer: Tracer | None = None,
        trust_prepaid_frames: bool = False,
        restarts: int = 0,
        last_crash_ts: float | None = None,
    ) -> None:
        self.frontend = frontend if frontend is not None else ServiceFrontend()
        if queue is not None and queue.frontend is not self.frontend:
            raise ValueError(
                "conflicting queue and frontend: the supplied queue wraps a "
                "different frontend"
            )
        if max_batch_items is not None and max_batch_items < 1:
            raise ValueError(
                f"max_batch_items must be >= 1 (or None), got {max_batch_items}"
            )
        self.queue = queue
        self.max_batch_items = max_batch_items
        self.telemetry = self.frontend.telemetry
        self.callers = (
            callers
            if callers is not None
            else CallerRegistry(telemetry=self.telemetry)
        )
        # The default caller legacy payloads are wrapped under: full scopes,
        # so /v1 keeps doing everything it always did.  The key never
        # leaves this process.
        self._legacy_api_key = self.callers.register(
            self._unique_caller_id(self.LEGACY_CALLER_ID),
            (SCOPE_DATA_WRITE, SCOPE_ADMIN),
        )
        self.processor = EnvelopeProcessor(
            self.frontend, callers=self.callers, channel=_ServerChannel(self)
        )
        self.tracer: Tracer | None = None
        self.set_tracer(tracer)
        # Cheap sequential ids for internally wrapped legacy requests (the
        # caller never sees them; a uuid4 per /v1 request would be waste).
        self._legacy_ids = count(1)
        # Honour the router's prepaid marker on binary sub-frames only when
        # explicitly enabled (cluster workers behind a router); a public
        # server must never let clients stamp their own frames quota-free.
        self.trust_prepaid_frames = trust_prepaid_frames
        # Crash history injected by the pool manager on respawn, surfaced
        # on /healthz so operators can spot flapping workers.
        self.restarts = restarts
        self.last_crash_ts = last_crash_ts
        self.started_at = monotonic()
        self._serve_thread: threading.Thread | None = None
        super().__init__((host, port), _ServiceRequestHandler)

    def _unique_caller_id(self, base: str) -> str:
        """*base*, suffixed if an operator already registered that id."""
        if base not in self.callers.callers():
            return base
        index = 2
        while f"{base}-{index}" in self.callers.callers():
            index += 1
        return f"{base}-{index}"

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Attach (or detach, with ``None``) a tracer to the serving path.

        Wires the same tracer into every stage a request crosses — the
        transport, the envelope processor, the frontend and its gateway —
        so spans recorded at each layer land on one trace.  Safe to flip
        at runtime: each stage re-reads its ``tracer`` attribute per
        request, which the overhead benchmark relies on to compare traced
        and untraced throughput on one warmed-up server.
        """
        self.tracer = tracer
        self.processor.tracer = tracer
        self.frontend.tracer = tracer
        self.frontend.gateway.tracer = tracer

    # ------------------------------------------------------------------ #
    # dispatch (shared by single and batch endpoints)
    # ------------------------------------------------------------------ #

    def dispatch(self, request: Request) -> Response:
        """Dispatch one protocol request (through the queue when attached)."""
        return self.dispatch_legacy(request)

    @staticmethod
    def _as_legacy_response(sealed: SealedResponse) -> Response:
        """Unwrap a legacy-envelope outcome into a bare v1 response.

        The default caller carries full scopes, so denial only happens if
        an operator revoked it (a legitimate way to switch the v1 surface
        off); that surfaces as a typed 403 ``ErrorResponse``, never as a
        crashed handler thread.
        """
        if isinstance(sealed.response, DeniedResponse):
            return ErrorResponse(
                request_kind=sealed.response.request_kind,
                error="PermissionError",
                message=f"the legacy /v1 caller was revoked "
                f"({sealed.response.code}); use the authenticated /v2 API",
            )
        return sealed.response

    def dispatch_legacy(self, request: Request) -> Response:
        """Dispatch one bare (v1) request under the default-caller envelope."""
        sealed = self.processor.process(
            Envelope(
                request=request,
                api_key=self._legacy_api_key,
                request_id=f"legacy-{next(self._legacy_ids)}",
            )
        )
        return self._as_legacy_response(sealed)

    def dispatch_many(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch an already-formed batch straight through the frontend."""
        return self.dispatch_many_legacy(requests)

    def dispatch_many_legacy(self, requests: Sequence[Request]) -> list[Response]:
        """Dispatch a bare (v1) batch under default-caller envelopes."""
        if not requests:
            return []
        sealed = self.processor.process_many(
            [
                Envelope(
                    request=request,
                    api_key=self._legacy_api_key,
                    request_id=f"legacy-{next(self._legacy_ids)}",
                )
                for request in requests
            ]
        )
        return [self._as_legacy_response(item) for item in sealed]

    def dispatch_frame(
        self, frame: wirebin.RequestFrame, trace_id: str | None = None
    ) -> tuple[bytes, "DeniedResponse | ThrottledResponse | None"]:
        """Authorize and dispatch one binary frame.

        The whole frame travels under one caller credential, so admission
        (batch bound, API version, authorization, rate limit) runs once for
        all of its requests; an ``authenticate`` frame then flows straight
        into the frontend's columnar fused pass with no per-request protocol
        objects, while ``enroll`` / ``drift-report`` frames materialize
        their per-user matrices (storage appends per user anyway) and ride
        ``submit_many``.

        When a tracer is attached the whole frame shares **one** trace —
        admission, queue wait (always zero: frames never queue) and the
        fused pass are frame-level stages — fanned out on finish into one
        exported event per request (see ``Tracer.finish_frame``).
        *trace_id* carries the client-supplied ``X-Trace-Id``, if any.

        Returns
        -------
        tuple[bytes, DeniedResponse | ThrottledResponse | None]
            The encoded response frame, plus the frame-level rejection when
            admission refused the whole frame (``None`` on dispatch) — a
            single-frame POST answers with that rejection's mapped HTTP
            status (429/401/403), mirroring the JSON surface.
        """
        self.telemetry.increment("transport.binary_frames")
        count = frame.n_requests
        tracer = self.tracer
        trace = (
            tracer.start("binary-frame", trace_id=trace_id, request_id=frame.frame_id)
            if tracer is not None
            else None
        )
        admission_started = perf_counter() if trace is not None else 0.0
        rejection: DeniedResponse | ThrottledResponse | None = None
        if self.max_batch_items is not None and count > self.max_batch_items:
            self.telemetry.increment("transport.throttled_batches")
            rejection = ThrottledResponse(
                request_kind="batch",
                reason="batch-too-large",
                queue_depth=count,
                max_depth=self.max_batch_items,
                retry_after_s=0.0,
            )
        elif frame.api_version != API_VERSION:
            self.telemetry.increment("envelope.denied", count)
            rejection = DeniedResponse(
                request_kind=frame.op,
                code=CODE_UNSUPPORTED_VERSION,
                message=f"api_version {frame.api_version} is not "
                f"supported; this service speaks v{API_VERSION} "
                "(and the legacy /v1 endpoint)",
            )
        else:
            prepaid = frame.prepaid and self.trust_prepaid_frames
            if prepaid:
                self.telemetry.increment("transport.prepaid_frames")
            outcome = self.processor.authorize_frame(
                frame.api_key, frame.op, count, charge=not prepaid
            )
            if isinstance(outcome, (DeniedResponse, ThrottledResponse)):
                rejection = outcome
        if trace is not None:
            trace.add_span(
                SPAN_ADMISSION, perf_counter() - admission_started, n_requests=count
            )
        if rejection is not None:
            if trace is not None:
                trace.annotate(
                    error=getattr(rejection, "code", None)
                    or getattr(rejection, "reason", "rejected")
                )
                with trace.span(SPAN_RESPONSE_FRAMING):
                    body = wirebin.encode_rejection_frame(
                        frame.op, rejection, frame.frame_id, count
                    )
                tracer.finish(trace)
                return body, rejection
            return (
                wirebin.encode_rejection_frame(
                    frame.op, rejection, frame.frame_id, count
                ),
                rejection,
            )
        if trace is not None:
            trace.caller_id = outcome.caller_id
            # Binary frames bypass the micro-batch queue entirely; record
            # the stage explicitly so span sets stay uniform across paths.
            trace.add_span(SPAN_QUEUE_WAIT, 0.0, queued=False)
        if frame.op == "authenticate":
            result = self.frontend.submit_columns(
                frame.to_columns(
                    trace_id=None if trace is None else trace.trace_id
                )
            )
            if trace is not None:
                with trace.span(SPAN_RESPONSE_FRAMING):
                    body = wirebin.encode_columnar_response(
                        result, frame.frame_id, outcome.caller_id
                    )
                tracer.finish_frame(
                    trace,
                    frame.user_ids,
                    errors={
                        index: error.error for index, error in result.errors.items()
                    },
                )
                return body, None
            return (
                wirebin.encode_columnar_response(
                    result, frame.frame_id, outcome.caller_id
                ),
                None,
            )
        requests = frame.to_requests()
        if trace is not None:
            for request in requests:
                tracer.bind(request, trace)
        responses = self.frontend.submit_many(requests)
        if trace is not None:
            with trace.span(SPAN_RESPONSE_FRAMING):
                body = wirebin.encode_response_frame(
                    frame.op, responses, frame.frame_id, outcome.caller_id
                )
            tracer.finish_frame(
                trace,
                frame.user_ids,
                errors={
                    index: response.error
                    for index, response in enumerate(responses)
                    if isinstance(response, ErrorResponse)
                },
            )
            return body, None
        return (
            wirebin.encode_response_frame(
                frame.op, responses, frame.frame_id, outcome.caller_id
            ),
            None,
        )

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` payload: readiness plus coarse service totals.

        One health contract shared by the cluster's pool manager and any
        external orchestrator: ``ready`` plus the signals behind it —
        current micro-batch queue depth (backlog) and the serving
        registry's generation (which model snapshot this process answers
        with; workers of one cluster sharing a registry root report the
        same generation).
        """
        registry = getattr(self.frontend.gateway, "registry", None)
        return {
            "status": "ok",
            "ready": True,
            "uptime_s": monotonic() - self.started_at,
            "transport_requests": self.telemetry.counter_value("transport.requests"),
            "frontend_requests": self.telemetry.counter_value("frontend.requests"),
            "queue_depth": self.queue.depth if self.queue is not None else 0,
            "registry_generation": (
                int(registry.generation) if registry is not None else 0
            ),
            "restarts": self.restarts,
            "last_crash_ts": self.last_crash_ts,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self.server_address[1]

    def serve_background(self) -> "ServiceHTTPServer":
        """Start serving on a daemon thread; returns ``self`` (idempotent)."""
        if self.queue is not None:
            self.queue.start()
        if self._serve_thread is None or not self._serve_thread.is_alive():
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="service-http-server", daemon=True
            )
            self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving, join the background thread and stop the queue."""
        super().shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        if self.queue is not None:
            self.queue.stop()

    def __enter__(self) -> "ServiceHTTPServer":
        return self.serve_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.server_close()


class ServiceClient:
    """Typed protocol client speaking the JSON wire codec over HTTP.

    Presents the same ``submit`` / ``submit_many`` surface as the
    in-process :class:`~repro.service.frontend.ServiceFrontend`, so any
    caller of one can be pointed at the other — including
    :class:`~repro.service.fleet.FleetSimulator`.

    With an ``api_key`` the client speaks the **v2** enveloped API: every
    request is wrapped in an :class:`~repro.service.envelope.Envelope`
    (fresh ``request_id``, the caller credential), data-plane operations
    POST to ``/v2/requests``, control-plane operations to ``/v2/admin``,
    and the echoed ``request_id`` of every sealed response is verified.
    A typed caller rejection (401/403) raises :class:`PermissionError`.
    Without a key the client speaks the legacy ``/v1`` surface unchanged.

    With ``codec="binary"`` (requires an ``api_key``), frame-encodable
    ``submit_many`` batches travel as **one binary columnar frame**
    (:mod:`repro.service.wirebin`) instead of a JSON array — all feature
    vectors in a single contiguous float64 block the server decodes with
    zero copies — and :meth:`submit_stream` uploads arbitrarily large
    batches as chunked frame streams with bounded memory on both sides.
    Batches the binary codec cannot express (mixed operations, empty
    requests, non-coarse context labels) silently ride the JSON ``/v2``
    path, so behaviour is identical either way.

    A pool of up to ``pool_size`` persistent HTTP/1.1 connections is kept
    per client and reused across calls (each re-established transparently
    once after a drop).  The default pool of one serializes calls exactly
    like the single-connection client of old; concurrent submitters (one
    client shared by many threads) should size the pool to their thread
    count so exchanges run in parallel instead of queueing on one socket.

    Parameters
    ----------
    host, port:
        The server address (e.g. ``server.port`` of an in-process
        :class:`ServiceHTTPServer`).
    timeout_s:
        Socket timeout for connect/read, in seconds.
    api_key:
        Caller credential; providing one switches the client to the v2
        enveloped endpoints.
    codec:
        ``"json"`` (default) or ``"binary"`` — the wire form of
        ``submit_many`` batches.  The binary codec rides the authenticated
        ``/v2`` surface, so it requires an ``api_key``.
    pool_size:
        Connections kept per client (>= 1).  Calls beyond the pool size
        wait for a free connection.
    max_retry_wait:
        Opt-in bounded client-side backoff: on a 429/503 carrying a
        ``Retry-After`` header, the client sleeps the suggested interval
        and re-sends, as long as the *total* time slept this call stays
        within this budget (seconds).  The default of ``0.0`` keeps the
        historical behaviour — throttles and unavailability surface
        immediately as their typed responses.  Streams are never retried.
    deadline_s:
        Optional end-to-end deadline advertised to the server via the
        ``X-Deadline-S`` header on every request; the shard router bounds
        its own retry budget by it.  Purely advisory — the client's socket
        timeout stays ``timeout_s``.

    Raises
    ------
    ValueError
        If *codec* names no codec, ``codec="binary"`` comes without an
        ``api_key``, ``pool_size`` is not positive, or *max_retry_wait* /
        *deadline_s* is negative.
    """

    #: The wire codecs ``submit_many`` can speak.
    CODECS = ("json", "binary")

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8414,
        timeout_s: float = 30.0,
        api_key: str | None = None,
        codec: str = "json",
        pool_size: int = 1,
        max_retry_wait: float = 0.0,
        deadline_s: float | None = None,
    ) -> None:
        if codec not in self.CODECS:
            raise ValueError(f"codec must be one of {self.CODECS}, got {codec!r}")
        if codec == "binary" and api_key is None:
            raise ValueError(
                "the binary codec rides the authenticated /v2 surface; "
                "construct the client with an api_key"
            )
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if max_retry_wait < 0.0:
            raise ValueError(
                f"max_retry_wait must be >= 0, got {max_retry_wait}"
            )
        if deadline_s is not None and deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.api_key = api_key
        self.codec = codec
        self.pool_size = pool_size
        self.max_retry_wait = max_retry_wait
        self.deadline_s = deadline_s
        self._idle: list[HTTPConnection] = []
        self._idle_lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(pool_size)
        self._draining = False

    @property
    def _connection(self) -> HTTPConnection | None:
        """The most recently parked idle connection (diagnostics/tests)."""
        with self._idle_lock:
            return self._idle[-1] if self._idle else None

    @property
    def api_version(self) -> int:
        """The protocol revision this client speaks (1 without a key)."""
        return 2 if self.api_key is not None else 1

    # ------------------------------------------------------------------ #
    # wire plumbing
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop every pooled connection (a later call reconnects).

        Idle connections close immediately; connections checked out by
        in-flight exchanges close as they are returned (instead of being
        parked back into the pool of a closed client).  A later call
        reopens the pool.
        """
        with self._idle_lock:
            idle, self._idle = self._idle, []
            self._draining = True
        for connection in idle:
            connection.close()

    def _pop_idle(self) -> HTTPConnection | None:
        with self._idle_lock:
            self._draining = False
            return self._idle.pop() if self._idle else None

    def _push_idle(self, connection: HTTPConnection) -> None:
        with self._idle_lock:
            if self._draining:
                connection.close()
                return
            self._idle.append(connection)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _roundtrip(self, method: str, path: str, body: str | None = None) -> str:
        """One JSON exchange; see :meth:`_exchange` for the retry policy."""
        data, _ = self._exchange(
            method, path, body=None if body is None else body.encode("utf-8")
        )
        return data.decode("utf-8")

    def _exchange(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str = "application/json",
        stream: Any | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[bytes, str]:
        """One HTTP exchange over a pooled (re-established once) connection.

        Retry policy: a failure while *sending* (connect or write — the
        server cannot have processed anything) is retried once on a fresh
        socket for any method; a failure while *reading the response* is
        retried only for idempotent ``GET``\\ s.  A ``POST`` whose request
        was transmitted is never re-sent — the server may already have
        executed a non-idempotent operation (enroll, drift retrain), and a
        blind replay would duplicate it.  A *stream* body (an iterator of
        frame bytes, sent with chunked transfer encoding) is never retried
        at all — a partially consumed iterator cannot be replayed — and
        always opens a fresh socket so a stale keep-alive connection cannot
        waste its single attempt.

        Separately from transport failures, a **throttled or unavailable**
        answer (429/503 with a ``Retry-After`` header) is slept out and
        re-sent when the client was built with ``max_retry_wait > 0`` —
        these responses mean the server explicitly did *not* execute the
        operation, so re-sending is always safe.  The total time slept per
        call is bounded by ``max_retry_wait``; once the budget cannot cover
        the server's suggested wait, the typed rejection is returned to the
        caller exactly as without the option.

        Returns
        -------
        tuple[bytes, str]
            The response body and its ``Content-Type``.

        Raises
        ------
        DeadlineExceeded
            If a socket timeout fired during connect, send or read.
        ConnectionError
            If the server cannot be reached, or a non-idempotent exchange
            failed after its request may have been processed.
        """
        if self.deadline_s is not None:
            headers = {**(headers or {}), DEADLINE_HEADER: f"{self.deadline_s:g}"}
        self._slots.acquire()
        try:
            connection = self._pop_idle()
            last_error: Exception | None = None
            transport_attempts = 0
            retry_wait_budget = self.max_retry_wait
            while True:
                if transport_attempts >= 2:
                    raise ConnectionError(
                        f"cannot reach service at {self.host}:{self.port}: "
                        f"{last_error}"
                    ) from last_error
                if stream is not None and connection is not None:
                    connection.close()
                    connection = None
                if connection is None:
                    connection = HTTPConnection(
                        self.host, self.port, timeout=self.timeout_s
                    )
                try:
                    connection.request(
                        method,
                        path,
                        body=stream if stream is not None else body,
                        headers={"Content-Type": content_type, **(headers or {})},
                    )
                except (HTTPException, OSError) as error:
                    # Send-phase failure (stale keep-alive socket, refused
                    # connect): nothing reached the server, safe to retry —
                    # except for a stream, whose iterator may be partially
                    # consumed.
                    last_error = error
                    connection.close()
                    connection = None
                    if isinstance(error, TimeoutError):
                        raise DeadlineExceeded(
                            f"{method} {path} to {self.host}:{self.port} timed "
                            f"out after {self.timeout_s}s while sending",
                            timeout_s=self.timeout_s,
                        ) from error
                    if stream is not None:
                        raise ConnectionError(
                            f"streamed {method} {path} to {self.host}:"
                            f"{self.port} failed mid-send ({error}); a "
                            "partially consumed stream cannot be replayed"
                        ) from error
                    transport_attempts += 1
                    continue
                try:
                    response = connection.getresponse()
                    data = response.read()
                    response_type = response.getheader(
                        "Content-Type", "application/json"
                    )
                    status = response.status
                    retry_after = response.getheader("Retry-After")
                except (HTTPException, OSError) as error:
                    last_error = error
                    connection.close()
                    connection = None
                    if isinstance(error, TimeoutError):
                        raise DeadlineExceeded(
                            f"{method} {path} to {self.host}:{self.port} timed "
                            f"out after {self.timeout_s}s awaiting the response",
                            timeout_s=self.timeout_s,
                        ) from error
                    if method != "GET":
                        raise ConnectionError(
                            f"{method} {path} to {self.host}:{self.port} failed "
                            f"after the request was sent ({error}); not retrying "
                            "a possibly-executed non-idempotent operation"
                        ) from error
                    transport_attempts += 1
                    continue
                wait = self._retry_after_wait(
                    status, retry_after, retry_wait_budget, stream
                )
                if wait is not None:
                    # The server refused before executing (throttle /
                    # shard-unavailable), so re-sending cannot duplicate
                    # work.  The response was fully read, so the connection
                    # stays reusable.
                    retry_wait_budget -= wait
                    sleep(wait)
                    continue
                self._push_idle(connection)
                return data, response_type
        finally:
            self._slots.release()

    @staticmethod
    def _retry_after_wait(
        status: int,
        retry_after: str | None,
        budget: float,
        stream: Any | None,
    ) -> float | None:
        """How long to sleep before re-sending, or ``None`` to answer now.

        Only 429/503 answers carrying a parseable ``Retry-After`` are
        retried, only within the remaining *budget*, and never for streams
        (their iterator is already consumed).  Every retry consumes a small
        minimum from the budget so a ``Retry-After: 0`` server cannot pin
        the client in a zero-cost loop.
        """
        if status not in (429, 503) or stream is not None or budget <= 0.0:
            return None
        if retry_after is None:
            return None
        try:
            suggested = float(retry_after)
        except ValueError:
            return None
        wait = max(suggested, 0.05)
        return wait if wait <= budget else None

    # ------------------------------------------------------------------ #
    # protocol surface (mirrors ServiceFrontend)
    # ------------------------------------------------------------------ #

    # The v2 unseal contract (request-id echo check, denial →
    # PermissionError) is defined once in the envelope module and shared
    # with the in-process EnvelopeChannel.
    _unseal = staticmethod(unseal)

    def submit(
        self, request: Request, idempotency_key: str | None = None
    ) -> Response:
        """Send one typed request; returns its typed response.

        In v2 mode the request travels enveloped: data-plane operations go
        to ``/v2/requests``, control-plane operations to ``/v2/admin``, and
        *idempotency_key* (v2 only) makes retries of non-idempotent
        operations safe — the server executes once and replays the recorded
        response.  Transport-level failures (unreachable server,
        non-protocol body) raise; protocol-level failures come back as
        typed :class:`~repro.service.protocol.ErrorResponse` /
        :class:`~repro.service.protocol.ThrottledResponse` values, exactly
        as from the in-process frontend.

        Raises
        ------
        TypeError
            If *request* is not a protocol request.
        ConnectionError
            If the server cannot be reached.
        ValueError
            If the server's answer is not a wire-encoded response (or, in
            v2 mode, echoes the wrong request id), or *idempotency_key* is
            passed without an API key.
        PermissionError
            In v2 mode, when the server rejects this client's caller
            credential or scope (HTTP 401/403).
        """
        if self.api_key is None:
            if idempotency_key is not None:
                raise ValueError(
                    "idempotency keys require the v2 API; construct the "
                    "client with an api_key"
                )
            return loads_response(
                self._roundtrip("POST", REQUESTS_PATH, dumps_request(request))
            )
        envelope = Envelope(
            request=request,
            api_key=self.api_key,
            idempotency_key=idempotency_key,
        )
        path = V2_REQUESTS_PATH if is_data_plane(request) else V2_ADMIN_PATH
        sealed = loads_sealed(
            self._roundtrip("POST", path, dumps_envelope(envelope))
        )
        return self._unseal(envelope, sealed)

    def submit_sealed(
        self, request: Request, idempotency_key: str | None = None
    ) -> SealedResponse:
        """Send one v2 request and return the **sealed** response.

        The wire twin of
        :meth:`~repro.service.envelope.EnvelopeChannel.submit_sealed`:
        a caller rejection comes back as the typed
        :class:`~repro.service.envelope.DeniedResponse` inside the seal
        instead of raising :class:`PermissionError`, and the envelope
        metadata (``replayed``, ``caller_id``) stays visible — which is
        how the adversarial fleet detects an idempotency-key replay
        identically in process and over sockets.  Always rides the JSON
        single-request path (idempotency keys have no frame slot), even
        on a binary-codec client.

        Raises
        ------
        ValueError
            If this client has no API key (sealed responses are a v2
            construct), or the echoed ``request_id`` does not match.
        ConnectionError
            If the server cannot be reached.
        """
        if self.api_key is None:
            raise ValueError(
                "sealed responses require the v2 API; construct the client "
                "with an api_key"
            )
        envelope = Envelope(
            request=request,
            api_key=self.api_key,
            idempotency_key=idempotency_key,
        )
        path = V2_REQUESTS_PATH if is_data_plane(request) else V2_ADMIN_PATH
        sealed = loads_sealed(self._roundtrip("POST", path, dumps_envelope(envelope)))
        if sealed.request_id != envelope.request_id:
            raise ValueError(
                f"response echoes request_id {sealed.request_id!r}, "
                f"expected {envelope.request_id!r}"
            )
        return sealed

    def submit_many(self, requests: Sequence[Request]) -> list[Response]:
        """Send a batch in one exchange; responses come back in order.

        The server dispatches the array through
        :meth:`ServiceFrontend.submit_many
        <repro.service.frontend.ServiceFrontend.submit_many>`, so
        consecutive authenticate requests coalesce into fused scoring
        passes on the server side exactly as they would in process.  In v2
        mode the batch travels as an array of envelopes on the data-plane
        endpoint — control-plane operations do not batch; send them one at
        a time through :meth:`submit`.

        Raises
        ------
        TypeError
            If any entry is not a protocol request.
        ConnectionError
            If the server cannot be reached.
        ValueError
            If the server's answer is not an array of wire responses, or
            (v2) a control-plane request was included in the batch.
        PermissionError
            In v2 mode, when the server rejects this client's caller
            credential or scope (HTTP 401/403).
        """
        if not requests:
            return []
        if self.codec == "binary":
            op = wirebin.batch_op(requests)
            if op is not None:
                return self._submit_binary(requests, op)
        if self.api_key is None:
            body = serialization.dumps(
                [request_to_payload(request) for request in requests]
            )
            payload = serialization.loads(self._roundtrip("POST", REQUESTS_PATH, body))
            if not isinstance(payload, list) or len(payload) != len(requests):
                raise ValueError(
                    f"expected {len(requests)} wire responses, got "
                    f"{type(payload).__name__}"
                    + (f" of length {len(payload)}" if isinstance(payload, list) else "")
                )
            return [response_from_payload(item) for item in payload]
        for request in requests:
            if not is_data_plane(request):
                raise ValueError(
                    f"{request_kind(request)!r} is a control-plane operation; "
                    "v2 batches carry data-plane requests only — submit() "
                    "admin operations one at a time"
                )
        envelopes = [
            Envelope(request=request, api_key=self.api_key) for request in requests
        ]
        body = serialization.dumps(
            [envelope_to_payload(envelope) for envelope in envelopes]
        )
        payload = serialization.loads(
            self._roundtrip("POST", V2_REQUESTS_PATH, body)
        )
        if not isinstance(payload, list) or len(payload) != len(requests):
            raise ValueError(
                f"expected {len(requests)} sealed wire responses, got "
                f"{type(payload).__name__}"
                + (f" of length {len(payload)}" if isinstance(payload, list) else "")
            )
        return [
            self._unseal(envelope, sealed_from_payload(item))
            for envelope, item in zip(envelopes, payload)
        ]

    # ------------------------------------------------------------------ #
    # the binary columnar codec
    # ------------------------------------------------------------------ #

    def _submit_binary(self, requests: Sequence[Request], op: str) -> list[Response]:
        """Send a frame-encodable batch as one binary columnar frame."""
        frame_id = wirebin.new_frame_id()
        body = wirebin.encode_request_frame(
            requests, api_key=self.api_key, frame_id=frame_id, op=op
        )
        data, response_type = self._exchange(
            "POST",
            V2_REQUESTS_PATH,
            body=body,
            content_type=wirebin.CONTENT_TYPE,
        )
        return self._decode_binary_reply(
            data, response_type, [(frame_id, len(requests))]
        )

    def submit_stream(
        self, requests: Any, chunk_windows: int = 8192
    ) -> list[Response]:
        """Stream a large batch as chunked binary frames, bounded memory.

        The iterable is consumed lazily: requests accumulate into frames of
        at most *chunk_windows* windows (an operation change also cuts a
        frame), each frame is encoded and sent as soon as it is full, and
        the server dispatches frames as they arrive — so neither side ever
        holds the whole upload.  Responses come back as one frame per
        chunk, flattened into submission order, exactly as ``submit_many``
        would have answered.

        Parameters
        ----------
        requests:
            An iterable of data-plane protocol requests; every chunk must
            be frame-encodable (see :func:`repro.service.wirebin.batch_op`).
        chunk_windows:
            Most feature windows per frame (>= 1).

        Raises
        ------
        ValueError
            If the client speaks the JSON codec, ``chunk_windows`` is not
            positive, or a chunk is not frame-encodable.
        ConnectionError
            If the exchange fails (streams are never retried: a partially
            consumed iterator cannot be replayed).
        PermissionError
            If the server rejects this client's caller credential.
        """
        if self.codec != "binary":
            raise ValueError(
                "submit_stream requires the binary codec; construct the "
                "client with codec='binary'"
            )
        if chunk_windows < 1:
            raise ValueError(f"chunk_windows must be >= 1, got {chunk_windows}")
        expected: list[tuple[str, int]] = []

        def frames() -> Any:
            chunk: list[Request] = []
            windows = 0
            for request in requests:
                size = wirebin.request_windows(request)
                if chunk and (
                    type(request) is not type(chunk[0])
                    or windows + size > chunk_windows
                ):
                    yield self._encode_stream_chunk(chunk, expected)
                    chunk, windows = [], 0
                chunk.append(request)
                windows += size
            if chunk:
                yield self._encode_stream_chunk(chunk, expected)

        data, response_type = self._exchange(
            "POST",
            V2_REQUESTS_PATH,
            content_type=wirebin.CONTENT_TYPE,
            stream=frames(),
        )
        return self._decode_binary_reply(data, response_type, expected)

    def _encode_stream_chunk(
        self, chunk: list[Request], expected: list[tuple[str, int]]
    ) -> bytes:
        op = wirebin.batch_op(chunk)
        if op is None:
            raise ValueError(
                "stream chunk is not frame-encodable (mixed or empty "
                "requests, non-uniform schema); submit such batches through "
                "submit_many, which falls back to the JSON codec"
            )
        frame_id = wirebin.new_frame_id()
        expected.append((frame_id, len(chunk)))
        return wirebin.encode_request_frame(
            chunk, api_key=self.api_key, frame_id=frame_id, op=op
        )

    def _decode_binary_reply(
        self,
        data: bytes,
        response_type: str,
        expected: list[tuple[str, int]],
    ) -> list[Response]:
        """Decode response frames, verifying echoed frame ids and counts.

        Raises
        ------
        ValueError
            If the server's answer is not the expected frame sequence (a
            JSON answer means the transport rejected the frame itself —
            its typed message is surfaced).
        PermissionError
            If a frame was denied (same contract as the JSON v2 surface).
        """
        media_type = (response_type or "").split(";", 1)[0].strip().lower()
        if media_type != wirebin.CONTENT_TYPE:
            # The transport answered JSON: the frame never dispatched
            # (corrupt frame, wrong endpoint, server fault).
            try:
                response = loads_response(data.decode("utf-8"))
            except Exception:
                raise ValueError(
                    "expected a binary response frame, got an unreadable "
                    f"{media_type or 'untyped'} answer"
                ) from None
            message = getattr(response, "message", None)
            raise ValueError(
                f"binary frame rejected by the transport: {message or response}"
            )
        frames = wirebin.decode_response_frames(data)
        responses: list[Response] = []
        position = 0
        for frame in frames:
            if frame.error is not None:
                # The server tore mid-stream AFTER the preceding frames
                # executed (possibly non-idempotent operations); surface
                # exactly how far it got so the caller can reconcile
                # instead of blindly re-submitting everything.
                raise ValueError(
                    f"stream aborted by the server after {position} of "
                    f"{len(expected)} frames executed: {frame.error.message}"
                )
            if position >= len(expected):
                raise ValueError(
                    f"server answered more than the {len(expected)} frames sent"
                )
            frame_id, count = expected[position]
            if frame.frame_id != frame_id:
                raise ValueError(
                    f"response frame echoes frame_id {frame.frame_id!r}, "
                    f"expected {frame_id!r}"
                )
            if frame.n_requests != count:
                raise ValueError(
                    f"response frame answers {frame.n_requests} requests, "
                    f"expected {count}"
                )
            responses.extend(frame.to_responses())
            position += 1
        if position != len(expected):
            raise ValueError(
                f"expected {len(expected)} response frames, got {position}"
            )
        return responses

    def health(self) -> dict[str, Any]:
        """The server's ``/healthz`` payload."""
        return json.loads(self._roundtrip("GET", HEALTH_PATH))

    def metrics(self) -> dict[str, Any]:
        """The server's ``/metrics`` telemetry snapshot."""
        return serialization.loads(self._roundtrip("GET", METRICS_PATH))

    def metrics_text(self) -> str:
        """The server's ``/metrics`` in Prometheus text exposition format."""
        data, _ = self._exchange(
            "GET", METRICS_PATH, headers={"Accept": "text/plain"}
        )
        return data.decode("utf-8")


# --------------------------------------------------------------------- #
# command line
# --------------------------------------------------------------------- #


def _build_demo_frontend(n_users: int, seed: int) -> ServiceFrontend:
    """A frontend whose gateway serves a freshly enrolled synthetic fleet."""
    from repro.service.fleet import FleetConfig, FleetSimulator

    simulator = FleetSimulator(FleetConfig(n_users=n_users, seed=seed))
    simulator.build_users()
    simulator.enroll_fleet()
    return simulator.frontend


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: serve a frontend over HTTP until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.transport",
        description="Serve the authentication service protocol over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8414, help="TCP port (0 = pick free)")
    parser.add_argument(
        "--registry-root",
        default=None,
        help="directory of a persisted ModelRegistry to load and serve",
    )
    parser.add_argument(
        "--demo-fleet",
        type=int,
        default=0,
        metavar="N",
        help="pre-enroll N synthetic fleet users (feature columns f00..f11) "
        "so clients can authenticate immediately",
    )
    parser.add_argument("--seed", type=int, default=7, help="demo-fleet seed")
    parser.add_argument(
        "--max-batch", type=int, default=256, help="micro-batch queue slice size"
    )
    parser.add_argument(
        "--max-delay-ms",
        type=float,
        default=5.0,
        help="micro-batch queue flush delay (milliseconds)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=1024,
        help="admission-control bound on pending requests (0 = unbounded)",
    )
    parser.add_argument(
        "--overflow",
        choices=MicroBatchQueue.OVERFLOW_POLICIES,
        default="reject",
        help="what a full queue does with new submissions",
    )
    parser.add_argument(
        "--max-batch-items",
        type=int,
        default=4096,
        help="admission bound on batch-array POST length (0 = unbounded)",
    )
    parser.add_argument(
        "--no-queue",
        action="store_true",
        help="dispatch single requests synchronously instead of micro-batching",
    )
    parser.add_argument(
        "--caller-id",
        default="operator",
        help="caller id provisioned at startup for the v2 API (its key is "
        "printed once)",
    )
    parser.add_argument(
        "--caller-scopes",
        default="data:write,admin",
        help="comma-separated scopes of the provisioned caller "
        "(subset of: data:write, admin)",
    )
    parser.add_argument(
        "--caller-rate",
        type=float,
        default=0.0,
        help="per-second request quota of the provisioned caller "
        "(token bucket; 0 = unlimited)",
    )
    parser.add_argument(
        "--caller-burst",
        type=float,
        default=0.0,
        help="token-bucket burst of the provisioned caller "
        "(0 = same as --caller-rate); size it above the largest batch",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of requests to trace end-to-end, 0..1 (0 disables "
        "tracing entirely; client-supplied X-Trace-Id is always traced)",
    )
    parser.add_argument(
        "--slow-request-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="log a WARNING with the per-stage breakdown for any traced "
        "request slower than MS milliseconds (0 disables)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="append every exported trace event as one JSON line to PATH "
        "(in addition to the in-memory ring)",
    )
    args = parser.parse_args(argv)

    if args.demo_fleet:
        print(f"enrolling a {args.demo_fleet}-user demo fleet...", flush=True)
        frontend = _build_demo_frontend(args.demo_fleet, args.seed)
    elif args.registry_root is not None:
        from repro.service.gateway import AuthenticationGateway
        from repro.service.registry import ModelRegistry

        registry = ModelRegistry(root=args.registry_root)
        loaded = registry.load()
        print(f"loaded {loaded} bundle(s) from {args.registry_root}", flush=True)
        frontend = ServiceFrontend(AuthenticationGateway(registry=registry))
    else:
        frontend = ServiceFrontend()

    queue = (
        None
        if args.no_queue
        else MicroBatchQueue(
            frontend,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay_ms / 1e3,
            max_depth=args.max_depth or None,
            overflow=args.overflow,
        )
    )
    tracer = (
        Tracer(
            sample_rate=args.trace_sample_rate,
            jsonl_path=args.trace_jsonl,
            slow_request_ms=args.slow_request_ms or None,
            telemetry=frontend.telemetry,
        )
        if args.trace_sample_rate > 0.0 or args.trace_jsonl
        else None
    )
    with ServiceHTTPServer(
        frontend,
        host=args.host,
        port=args.port,
        queue=queue,
        max_batch_items=args.max_batch_items or None,
        tracer=tracer,
    ) as server:
        scopes = tuple(
            scope.strip() for scope in args.caller_scopes.split(",") if scope.strip()
        )
        api_key = server.callers.register(args.caller_id, scopes)
        if args.caller_rate:
            server.callers.set_rate_limit(
                args.caller_id, args.caller_rate, args.caller_burst or None
            )
        print(
            f"serving {REQUESTS_PATH} (legacy), {V2_REQUESTS_PATH} and "
            f"{V2_ADMIN_PATH} on http://{args.host}:{server.port} "
            f"(healthz: {HEALTH_PATH}, metrics: {METRICS_PATH}); Ctrl-C stops",
            flush=True,
        )
        print(
            f"v2 caller {args.caller_id!r} (scopes: {', '.join(scopes)}) "
            f"API key: {api_key}",
            flush=True,
        )
        stop = threading.Event()

        def _graceful(signum: int, frame: Any) -> None:
            stop.set()

        # SIGTERM and SIGINT both request a graceful stop: the with-block
        # exit below drains in-flight requests (``server_close`` joins the
        # handler threads), which finishes their traces — and the tracer's
        # JSONL sink writes synchronously per event, so every trace of a
        # served request is on disk before the process exits.
        signal.signal(signal.SIGTERM, _graceful)
        signal.signal(signal.SIGINT, _graceful)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print("\nshutting down (draining in-flight requests)...", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
