"""Multi-process sharded serving cluster: router, worker pool, fleet view.

The GIL wall, measured: one in-process thread pushes ~270k windows/s
through the binary serving path, yet 32 concurrent clients through the
threaded HTTP server aggregate a fraction of that — every handler thread
shares one interpreter.  The serving stack is already shard-local by
construction (per-user frontend locks, a stateless fused pass, a
generation-keyed stack cache), so this module scales it across processes
without touching it:

* :class:`HashRing` — a deterministic consistent-hash ring (SHA-256,
  virtual nodes) mapping ``user_id`` → shard index.  Every process that
  builds a ring of the same size agrees on the mapping, so enrollments,
  feature-store windows and trained bundles for one user always land on
  one worker.
* :class:`WorkerPool` — spawns N worker processes (each a full
  :class:`~repro.service.transport.ServiceHTTPServer` over its own
  frontend), health-checks them, detects crashes and restarts them.
  Workers hold the router's stdin pipe open and exit when it reaches EOF,
  so a dying router never leaks orphan processes.
* :class:`ShardRouter` — an HTTP front door speaking the *existing* wire
  surface: binary :mod:`~repro.service.wirebin` frames are split
  per-shard (:func:`~repro.service.wirebin.encode_frame_slice`), fanned
  out to workers over keep-alive connections, and the responses are
  merged back **in request order**; JSON requests route by ``user_id``.
  ``X-Trace-Id`` is forwarded on every hop, so one trace id links the
  router's split/dispatch/merge spans with the worker-side span events.
  A dead shard answers a typed 503 ``shard-unavailable`` (or, mid-stream,
  the torn-stream abort marker) — never a hang or a stack trace.
* Fleet telemetry — ``GET /metrics`` on the router scrapes every worker
  and merges the payloads: counters sum, histogram families merge
  bucket-wise (:func:`~repro.service.telemetry.merge_histogram_snapshots`),
  and the result renders as one Prometheus view of the whole cluster.

Fleet-wide quotas ride on
:class:`~repro.service.envelope.SharedTokenBucket`: every worker attaches
the same file-backed bucket, so a caller split across shards is throttled
at one aggregate rate.  The router charges that bucket **once per frame,
before the split** — sub-frames carry a ``prepaid`` marker the workers
honor — and refunds the charge when a frame fails outright, so a frame
split across K shards costs its request count exactly once, retries and
hedges included.

The routing layer self-heals around worker churn:

* :class:`RetryPolicy` — sub-frames that meet a dead or restarting shard
  retry with capped exponential backoff + jitter, bounded by a total
  deadline (and by the client's ``X-Deadline-S`` budget); a restart that
  lands inside the budget answers a normal 200 instead of a 503.
  Failures after dispatch retry only for idempotent (authenticate)
  operations.
* :class:`HedgePolicy` — optional straggler hedging: an exchange that
  outlives the observed latency quantile gets a duplicate dispatch and
  the first answer wins, with no double-charged quota or double-counted
  telemetry.
* Graceful drain — the ``drain-shard`` admin envelope (router-resident)
  flips a shard out of the routing set: new sub-frames rebalance onto
  the remaining shards via the ring's deterministic exclude-walk while
  in-flight requests complete; ``undrain`` restores the original
  bit-for-bit mapping.

Run a 4-worker cluster over a persisted registry::

    python -m repro.service.cluster router --workers 4 \\
        --registry-root /var/lib/repro/registry

or spawn one worker by hand (the pool does this for you)::

    python -m repro.service.cluster worker --shard-index 0 --n-shards 4
"""

from __future__ import annotations

import argparse
import json
import os
import select
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
from bisect import bisect_right
from dataclasses import dataclass
from hashlib import sha256
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from random import random
from time import monotonic, perf_counter, sleep, time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.scoring import offsets_from_lengths
from repro.service import wirebin
from repro.service.envelope import (
    CODE_UNKNOWN_KEY,
    REASON_BATCH_EXCEEDS_BURST,
    REASON_RATE_LIMITED,
    SCOPE_ADMIN,
    SCOPE_DATA_WRITE,
    DeniedResponse,
    SealedResponse,
    SharedTokenBucket,
    sealed_to_payload,
)
from repro.service.protocol import (
    ColumnarAuthResult,
    DrainShardRequest,
    DrainShardResponse,
    ErrorResponse,
    ThrottledResponse,
    dumps_response,
    request_from_payload,
    response_from_payload,
    response_to_payload,
)
from repro.service.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryHub,
    merge_histogram_snapshots,
    merged_hub,
    render_prometheus,
)
from repro.service.tracing import (
    SPAN_SHARD_DISPATCH,
    SPAN_SHARD_MERGE,
    SPAN_SHARD_SPLIT,
    TRACE_HEADER,
    Tracer,
)
from repro.service.transport import (
    DEADLINE_HEADER,
    HEALTH_PATH,
    HISTOGRAMS_PATH,
    METRICS_PATH,
    REQUESTS_PATH,
    V2_ADMIN_PATH,
    V2_REQUESTS_PATH,
    _BoundedBodyReader,
    _ChunkedBodyReader,
)
from repro.utils import serialization

#: Environment variable carrying the shared cluster API key from the pool
#: manager to its workers (kept off the command line, which is visible to
#: every process on the machine).
CLUSTER_API_KEY_ENV = "REPRO_CLUSTER_API_KEY"

#: The caller id the pool provisions on every worker (one credential, one
#: fleet-wide identity — and one shared quota, when a rate is set).
CLUSTER_CALLER_ID = "cluster-operator"

#: Virtual nodes per shard on the hash ring.  More replicas smooth the
#: key-space split (64 keeps the largest/smallest shard within a few
#: percent of each other at 4 shards) at O(n_shards * replicas) ring size.
RING_REPLICAS = 64


class ShardUnavailable(ConnectionError):
    """A request needed a shard whose worker is down (typed 503).

    Raised by the router's forwarding layer when a worker cannot be
    reached (process dead, connect refused, socket torn mid-exchange).
    The pool's health loop restarts crashed workers, so the condition is
    transient: clients should back off briefly and retry.
    """

    def __init__(self, shard: int, reason: str, dispatched: bool = False) -> None:
        super().__init__(
            f"shard-unavailable: shard {shard} ({reason}); crashed workers "
            "are restarted automatically — retry shortly"
        )
        self.shard = shard
        #: True when the request may have reached the worker before the
        #: failure.  The router's retry layer re-sends freely while this
        #: is False (nothing was dispatched, so nothing can double-run);
        #: once True, only idempotent operations are retried.
        self.dispatched = dispatched


class _WorkerFault(Exception):
    """A worker answered a non-frame (JSON) fault; relay status + body."""

    def __init__(self, shard: int, status: int, body: bytes) -> None:
        message = body.decode("utf-8", "replace")
        try:
            message = str(json.loads(message).get("message", message))
        except (ValueError, AttributeError):
            pass
        super().__init__(f"shard {shard} answered {status}: {message}")
        self.shard = shard
        self.status = status
        self.body = body


class _FrameRejected(Exception):
    """Internal unwind: a worker rejected the frame (denied/throttled).

    Routed through the frame-charge error path so the router refunds its
    pre-split quota charge — the operation never ran — before answering
    the typed rejection; never escapes :meth:`ShardRouter.route_frame`.
    """

    def __init__(
        self, body: bytes, rejection: "DeniedResponse | ThrottledResponse"
    ) -> None:
        super().__init__(rejection.request_kind)
        self.body = body
        self.rejection = rejection


@dataclass(frozen=True)
class RetryPolicy:
    """Router-side retry budget for shard exchanges (backoff + deadline).

    The pool's health loop restarts a crashed worker within a second or
    two, so a sub-frame that meets a dead shard usually succeeds if the
    router simply re-resolves the endpoint and tries again.  Retries use
    capped exponential backoff with full jitter and stop at whichever
    comes first: the attempt cap, the policy deadline, or the client's
    own ``X-Deadline-S`` budget.

    A failure whose request may already have reached a worker
    (``ShardUnavailable.dispatched``) is retried only for idempotent
    operations — authenticate reads nothing and writes nothing, so
    re-scoring a window is always safe; enroll and drift-report are not
    re-sent once dispatched.

    The defaults are deliberately snappy (covers transient socket blips
    and fast respawns without stalling callers); crash-storm tolerance
    wants a bigger budget, e.g. ``RetryPolicy(max_attempts=30,
    deadline_s=30.0)``.
    """

    max_attempts: int = 4
    initial_backoff_s: float = 0.05
    max_backoff_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.initial_backoff_s <= 0.0 or self.max_backoff_s <= 0.0:
            raise ValueError("backoff bounds must be > 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_s <= 0.0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")

    def backoff_s(self, attempt: int) -> float:
        """The wait before retry number *attempt* (0-based), jittered."""
        base = min(
            self.max_backoff_s, self.initial_backoff_s * self.multiplier**attempt
        )
        return base * (1.0 + self.jitter * random())


@dataclass(frozen=True)
class HedgePolicy:
    """Hedged dispatch against stragglers: duplicate past a quantile.

    When a shard exchange outlives the router's observed latency
    *quantile* (fed from the mergeable ``router.exchange`` histogram), a
    second identical sub-frame is sent — the restarted replica, when the
    straggle is a crash-respawn — and the first answer wins.  The loser
    is discarded: its latency is not recorded and, because the router
    charges quota once per frame before the split, it can never charge
    twice.  Only idempotent (authenticate) sub-frames hedge.

    Off by default on the router; enable with ``--hedge-quantile`` or by
    passing a policy.  ``min_samples`` keeps the trigger quiet until the
    histogram has seen enough exchanges to estimate a tail.
    """

    quantile: float = 95.0
    min_samples: int = 50
    min_delay_s: float = 0.01
    max_delay_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ValueError(f"quantile must be in (0, 100], got {self.quantile}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.min_delay_s <= 0.0 or self.max_delay_s < self.min_delay_s:
            raise ValueError("delay bounds must satisfy 0 < min <= max")


# --------------------------------------------------------------------- #
# consistent-hash ring
# --------------------------------------------------------------------- #


class HashRing:
    """Consistent-hash ring over shard indices (deterministic everywhere).

    Hashing is SHA-256 (never Python's salted ``hash()``), so every
    process — router, workers, offline tooling — that builds a ring of
    the same ``n_shards`` maps each ``user_id`` to the same shard.  Each
    shard owns :data:`RING_REPLICAS` virtual nodes, which keeps the
    key-space split even and, when the ring grows by one shard, moves
    only ~``1/n`` of the users.

    Raises
    ------
    ValueError
        If *n_shards* or *replicas* is not positive.
    """

    def __init__(self, n_shards: int, replicas: int = RING_REPLICAS) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                digest = sha256(f"shard-{shard}/{replica}".encode("utf-8")).digest()
                points.append((int.from_bytes(digest[:8], "big"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._shards = [shard for _, shard in points]

    def shard_for(self, user_id: str, exclude: Sequence[int] = ()) -> int:
        """The shard owning *user_id* (stable across processes and runs).

        *exclude* removes shards from consideration (draining, for live
        resharding): the lookup walks clockwise from the user's ring
        point to the first virtual node of a non-excluded shard.  With no
        exclusions the walk stops at step zero, so decisions are
        bit-for-bit identical to the plain lookup — and users whose
        owning shard is *not* excluded never move at all.

        Raises
        ------
        ValueError
            If *exclude* covers every shard.
        """
        digest = sha256(user_id.encode("utf-8")).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect_right(self._points, point) % len(self._points)
        if not exclude:
            return self._shards[index]
        excluded = frozenset(exclude)
        for step in range(len(self._points)):
            shard = self._shards[(index + step) % len(self._points)]
            if shard not in excluded:
                return shard
        raise ValueError(
            f"every shard is excluded ({sorted(excluded)}): the ring has "
            "nowhere left to place users"
        )

    def split(
        self, user_ids: Sequence[str], exclude: Sequence[int] = ()
    ) -> dict[int, list[int]]:
        """Group positions of *user_ids* by owning shard (order preserved)."""
        groups: dict[int, list[int]] = {}
        excluded = frozenset(exclude)
        for index, user_id in enumerate(user_ids):
            groups.setdefault(self.shard_for(user_id, excluded), []).append(index)
        return groups


# --------------------------------------------------------------------- #
# worker pool
# --------------------------------------------------------------------- #


class StaticEndpoints:
    """A fixed set of already-running shard servers (no child processes).

    The pool interface over servers something else owns — in-process
    :class:`~repro.service.transport.ServiceHTTPServer` instances in unit
    tests, or an externally orchestrated fleet.  There is nothing to
    spawn, restart or reap; a dead endpoint simply keeps failing until
    its owner revives it.
    """

    def __init__(self, endpoints: Sequence[tuple[str, int]]) -> None:
        if not endpoints:
            raise ValueError("endpoints must name at least one shard server")
        self._endpoints = [(str(host), int(port)) for host, port in endpoints]

    @property
    def n_shards(self) -> int:
        return len(self._endpoints)

    def start(self) -> "StaticEndpoints":
        return self

    def stop(self) -> None:
        pass

    def endpoint(self, shard: int) -> tuple[str, int] | None:
        return self._endpoints[shard]

    def report_failure(self, shard: int, reason: str) -> None:
        pass

    def health(self) -> dict[str, dict[str, Any]]:
        return {
            str(shard): {
                "alive": True,
                "host": host,
                "port": port,
                "pid": None,
                "restarts": 0,
                "last_crash_ts": None,
                "last_error": None,
            }
            for shard, (host, port) in enumerate(self._endpoints)
        }


class _WorkerHandle:
    """Mutable per-shard state of one pooled worker process."""

    __slots__ = (
        "shard",
        "process",
        "port",
        "restarts",
        "alive",
        "last_error",
        "last_crash_ts",
    )

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.process: subprocess.Popen | None = None
        self.port = 0
        self.restarts = 0
        self.alive = False
        self.last_error: str | None = None
        self.last_crash_ts: float | None = None


class WorkerPool:
    """Spawns, health-checks and restarts N shard worker processes.

    Each worker is ``python -m repro.service.cluster worker`` serving the
    full transport stack on a free port; the pool learns the port from
    the worker's ``READY <port>`` line.  A background health loop polls
    the processes and respawns any that die (unless *restart* is off —
    tests pin crash semantics that way).  Workers inherit the pool's
    stdin pipe and exit on EOF, so no orphans survive the owning process,
    however it dies.

    Parameters
    ----------
    n_workers:
        Shard count; must match the router's ring size (the router builds
        its ring from this pool, so that is automatic).
    registry_root:
        Optional persisted :class:`~repro.service.registry.ModelRegistry`
        directory every worker loads at startup — all shards then serve
        the same model snapshot.
    api_key:
        The shared cluster credential (generated when omitted; read it
        back from :attr:`api_key`).  Handed to workers via the
        :data:`CLUSTER_API_KEY_ENV` environment variable.
    caller_rate, caller_burst:
        Fleet-wide quota for the cluster caller: when a rate is set, every
        worker attaches one :class:`~repro.service.envelope.SharedTokenBucket`
        over the same state file (*quota_path*), so the limit holds across
        shards in aggregate.
    quota_path:
        The shared quota state file (a temporary one per pool when
        omitted and a rate is set).
    restart:
        Respawn crashed workers (default).  In-flight requests to a dead
        shard still answer 503; the restarted worker serves what the
        registry root persisted.
    no_queue:
        Disable the workers' micro-batch queues (binary frames bypass
        them either way).
    health_interval_s, spawn_timeout_s:
        Health-poll cadence and the per-worker READY deadline.
    worker_args:
        Extra CLI arguments appended to every worker command line (e.g.
        ``["--trace-sample-rate", "0.1"]``).
    """

    def __init__(
        self,
        n_workers: int,
        registry_root: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        api_key: str | None = None,
        caller_id: str = CLUSTER_CALLER_ID,
        caller_scopes: Sequence[str] = (SCOPE_DATA_WRITE, SCOPE_ADMIN),
        caller_rate: float = 0.0,
        caller_burst: float = 0.0,
        quota_path: str | os.PathLike | None = None,
        restart: bool = True,
        no_queue: bool = False,
        health_interval_s: float = 0.25,
        spawn_timeout_s: float = 120.0,
        worker_args: Sequence[str] = (),
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.registry_root = None if registry_root is None else os.fspath(registry_root)
        self.host = host
        self.api_key = api_key if api_key is not None else wirebin.new_frame_id()
        self.caller_id = caller_id
        self.caller_scopes = tuple(caller_scopes)
        self.caller_rate = float(caller_rate)
        self.caller_burst = float(caller_burst)
        self.restart = restart
        self.no_queue = no_queue
        self.health_interval_s = float(health_interval_s)
        self.spawn_timeout_s = float(spawn_timeout_s)
        self.worker_args = tuple(worker_args)
        self._quota_dir: tempfile.TemporaryDirectory | None = None
        if quota_path is None and self.caller_rate > 0.0:
            self._quota_dir = tempfile.TemporaryDirectory(prefix="repro-quota-")
            quota_path = os.path.join(self._quota_dir.name, "cluster-quota.json")
        self.quota_path = None if quota_path is None else os.fspath(quota_path)
        self._workers = [_WorkerHandle(shard) for shard in range(self.n_workers)]
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None

    @property
    def n_shards(self) -> int:
        return self.n_workers

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "WorkerPool":
        """Spawn every worker, await READY, start the health loop."""
        for handle in self._workers:
            self._spawn(handle)
        self._stopping.clear()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="worker-pool-health", daemon=True
        )
        self._health_thread.start()
        return self

    def stop(self) -> None:
        """Stop every worker gracefully (EOF on stdin, then escalate)."""
        self._stopping.set()
        if self._health_thread is not None:
            self._health_thread.join()
            self._health_thread = None
        for handle in self._workers:
            process = handle.process
            handle.alive = False
            if process is None or process.poll() is not None:
                continue
            try:
                if process.stdin is not None:
                    process.stdin.close()
                process.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                process.terminate()
                try:
                    process.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        if self._quota_dir is not None:
            self._quota_dir.cleanup()
            self._quota_dir = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # spawning
    # ------------------------------------------------------------------ #

    def _command(
        self,
        shard: int,
        restarts: int = 0,
        last_crash_ts: float | None = None,
    ) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.service.cluster",
            "worker",
            "--shard-index",
            str(shard),
            "--n-shards",
            str(self.n_workers),
            "--host",
            self.host,
            "--port",
            "0",
            "--caller-id",
            self.caller_id,
            "--caller-scopes",
            ",".join(self.caller_scopes),
        ]
        if self.registry_root is not None:
            command += ["--registry-root", self.registry_root]
        if self.caller_rate > 0.0:
            command += ["--caller-rate", str(self.caller_rate)]
            if self.caller_burst > 0.0:
                command += ["--caller-burst", str(self.caller_burst)]
            if self.quota_path is not None:
                command += ["--quota-path", self.quota_path]
                # The router charges the shared bucket once per frame
                # before the split; workers it spawns honor the prepaid
                # marker on sub-frames instead of charging again.
                command.append("--trust-prepaid")
        if self.no_queue:
            command.append("--no-queue")
        if restarts:
            # Restart lineage rides into the respawned worker so its own
            # /healthz reports how many lives this shard has burned.
            command += ["--restarts", str(restarts)]
            if last_crash_ts is not None:
                command += ["--last-crash-ts", repr(last_crash_ts)]
        command.extend(self.worker_args)
        return command

    def _environment(self) -> dict[str, str]:
        environment = dict(os.environ)
        environment[CLUSTER_API_KEY_ENV] = self.api_key
        # The worker must import this very ``repro`` package regardless of
        # how the parent found it (installed, PYTHONPATH, editable).
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        existing = environment.get("PYTHONPATH", "")
        paths = [package_root] + ([existing] if existing else [])
        environment["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(paths))
        return environment

    def _spawn(self, handle: _WorkerHandle) -> None:
        process = subprocess.Popen(
            self._command(handle.shard, handle.restarts, handle.last_crash_ts),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=self._environment(),
            text=True,
        )
        try:
            port = self._await_ready(process)
        except Exception:
            process.kill()
            process.wait()
            raise
        with self._lock:
            handle.process = process
            handle.port = port
            handle.alive = True
            handle.last_error = None
        threading.Thread(
            target=self._drain_stdout, args=(process.stdout,), daemon=True
        ).start()

    def _await_ready(self, process: subprocess.Popen) -> int:
        """The port from the worker's ``READY <port>`` startup line."""
        assert process.stdout is not None
        deadline = monotonic() + self.spawn_timeout_s
        while True:
            if process.poll() is not None:
                raise RuntimeError(
                    f"worker exited with status {process.returncode} before "
                    "printing READY"
                )
            remaining = deadline - monotonic()
            if remaining <= 0.0:
                raise RuntimeError(
                    f"worker not READY within {self.spawn_timeout_s:.0f}s"
                )
            readable, _, _ = select.select(
                [process.stdout], [], [], min(remaining, 0.5)
            )
            if not readable:
                continue
            line = process.stdout.readline()
            if line.startswith("READY "):
                return int(line.split()[1])

    @staticmethod
    def _drain_stdout(stream: Any) -> None:
        """Keep reading a worker's stdout so its pipe can never fill."""
        try:
            while stream.readline():
                pass
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------ #
    # health + discovery
    # ------------------------------------------------------------------ #

    def _health_loop(self) -> None:
        while not self._stopping.wait(self.health_interval_s):
            for handle in self._workers:
                process = handle.process
                if process is None:
                    continue
                returncode = process.poll()
                if returncode is None:
                    continue
                handle.alive = False
                handle.last_error = f"worker process exited with status {returncode}"
                handle.last_crash_ts = time()
                if not self.restart or self._stopping.is_set():
                    continue
                handle.restarts += 1
                try:
                    self._spawn(handle)
                except Exception as error:  # spawn failed; retry next tick
                    handle.last_error = (
                        f"restart failed: {type(error).__name__}: {error}"
                    )

    def endpoint(self, shard: int) -> tuple[str, int] | None:
        """The live ``(host, port)`` of *shard*, or ``None`` while down."""
        handle = self._workers[shard]
        if not handle.alive:
            return None
        return (self.host, handle.port)

    def report_failure(self, shard: int, reason: str) -> None:
        """Router feedback: an exchange with *shard* failed.

        Only a dead process marks the shard down (the health loop then
        restarts it); a transient socket error against a live process
        leaves it in rotation.
        """
        handle = self._workers[shard]
        process = handle.process
        if process is not None and process.poll() is not None:
            handle.alive = False
            handle.last_error = reason
            handle.last_crash_ts = time()

    def pids(self) -> dict[int, int | None]:
        """Current worker pid per shard (``None`` while down)."""
        return {
            handle.shard: (
                handle.process.pid
                if handle.process is not None and handle.process.poll() is None
                else None
            )
            for handle in self._workers
        }

    def health(self) -> dict[str, dict[str, Any]]:
        """Per-shard liveness for the router's ``/healthz``."""
        report: dict[str, dict[str, Any]] = {}
        for handle in self._workers:
            process = handle.process
            report[str(handle.shard)] = {
                "alive": handle.alive,
                "host": self.host,
                "port": handle.port,
                "pid": (
                    process.pid
                    if process is not None and process.poll() is None
                    else None
                ),
                "restarts": handle.restarts,
                "last_crash_ts": handle.last_crash_ts,
                "last_error": handle.last_error,
            }
        return report


# --------------------------------------------------------------------- #
# shard router
# --------------------------------------------------------------------- #


class _RouterRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP exchanges onto shard routing (one instance per request)."""

    protocol_version = "HTTP/1.1"
    server: "ShardRouter"

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request logging into telemetry instead of stderr."""

    # ------------------------------------------------------------------ #
    # plumbing (mirrors the worker transport's handler)
    # ------------------------------------------------------------------ #

    def _send_json(
        self, status: int, body: str, headers: dict[str, str] | None = None
    ) -> None:
        self._send_raw(status, body.encode("utf-8"), "application/json", headers)

    def _send_raw(
        self,
        status: int,
        payload: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if self.close_connection:
            # Keep-alive clients must learn the socket is closing with
            # this response, or their next reuse meets a reset.
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _client_error(self, kind: str, error: Exception) -> ErrorResponse:
        self.server.telemetry.increment("router.client_errors")
        return ErrorResponse(
            request_kind=kind, error=type(error).__name__, message=str(error)
        )

    def _send_unavailable(
        self, kind: str, error: ShardUnavailable, payload: Any = None
    ) -> None:
        """Answer a typed 503, sealed when the failed exchange was enveloped.

        A v2 caller expects every JSON answer sealed (the client's unseal
        verifies the request-id echo); handing it the bare v1 error shape
        would turn a typed shard outage into a client-side parse error.
        *payload* is the already-decoded request body — an envelope dict
        (v2 single/admin), a list of envelopes (v2 batch, answered
        per-envelope), or ``None`` for the legacy plane.
        """
        self.server.telemetry.increment("router.unavailable")
        response = ErrorResponse(
            request_kind=kind, error="ShardUnavailable", message=str(error)
        )
        headers = {"Retry-After": "1"}

        def _sealed(item: Any) -> dict:
            request_id = (
                str(item.get("request_id", "")) if isinstance(item, dict) else ""
            )
            return sealed_to_payload(
                SealedResponse(response=response, request_id=request_id)
            )

        if isinstance(payload, dict):
            self._send_json(503, serialization.dumps(_sealed(payload)), headers)
        elif isinstance(payload, list):
            self._send_json(
                503,
                serialization.dumps([_sealed(item) for item in payload]),
                headers,
            )
        else:
            self._send_json(503, dumps_response(response), headers)

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == HEALTH_PATH:
            self._send_json(200, json.dumps(self.server.health(), sort_keys=True))
        elif self.path == METRICS_PATH:
            accept = (self.headers.get("Accept") or "").lower()
            view = self.server.fleet_metrics()
            if "text/plain" in accept:
                hub = merged_hub(view["counters"], view["histograms"])
                payload = render_prometheus(hub).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
                return
            self._send_json(200, serialization.dumps(view))
        else:
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: GET {self.path}",
                    )
                ),
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if self.path not in (REQUESTS_PATH, V2_REQUESTS_PATH, V2_ADMIN_PATH):
            self._send_json(
                404,
                dumps_response(
                    ErrorResponse(
                        request_kind="transport",
                        error="KeyError",
                        message=f"no such endpoint: POST {self.path}; protocol "
                        f"requests go to {REQUESTS_PATH} (legacy), "
                        f"{V2_REQUESTS_PATH} (enveloped data plane) or "
                        f"{V2_ADMIN_PATH} (enveloped control plane)",
                    )
                ),
            )
            return
        self.server.telemetry.increment("router.requests")
        with self.server.telemetry.timer("router.request"):
            content_type = (
                (self.headers.get("Content-Type") or "")
                .split(";", 1)[0]
                .strip()
                .lower()
            )
            if content_type == wirebin.CONTENT_TYPE:
                if self.path != V2_REQUESTS_PATH:
                    self.close_connection = True
                    response = self._client_error(
                        "transport",
                        TypeError(
                            f"binary batch frames ({wirebin.CONTENT_TYPE}) "
                            f"are accepted only at {V2_REQUESTS_PATH}"
                        ),
                    )
                    self._send_json(400, dumps_response(response))
                    return
                self._handle_binary()
                return
            try:
                length = int(self.headers.get("Content-Length", 0) or 0)
                raw = self.rfile.read(length)
                payload = json.loads(raw.decode("utf-8"))
            except Exception as error:  # malformed JSON / encoding
                self._send_json(
                    400, dumps_response(self._client_error("transport", error))
                )
                return
            try:
                if self.path == V2_ADMIN_PATH:
                    self._handle_admin(payload, raw)
                elif isinstance(payload, list):
                    self._handle_json_batch(payload)
                elif isinstance(payload, dict):
                    self._handle_json_single(payload, raw)
                else:
                    self._send_json(
                        400,
                        dumps_response(
                            self._client_error(
                                "transport",
                                TypeError(
                                    "request body must be a wire-encoded "
                                    "request object or an array of them, got "
                                    f"{type(payload).__name__}"
                                ),
                            )
                        ),
                    )
            except ShardUnavailable as error:
                self._send_unavailable(
                    "transport",
                    error,
                    None if self.path == REQUESTS_PATH else payload,
                )
            except _WorkerFault as fault:
                self._send_raw(fault.status, fault.body, "application/json")

    # ------------------------------------------------------------------ #
    # binary frames (split / fan out / merge)
    # ------------------------------------------------------------------ #

    def _handle_binary(self) -> None:
        """Split binary frames per shard and merge responses, incrementally.

        Mirrors the worker transport's streaming contract: each frame of a
        chunked upload answers one merged response frame, in order; a torn
        stream — including a shard dying mid-stream — delivers the
        completed frames plus a typed abort marker and closes the
        connection.  A single-frame request whose shard is down answers a
        typed 503 instead.
        """
        if (self.headers.get("Transfer-Encoding") or "").lower() == "chunked":
            read = _ChunkedBodyReader(self.rfile).read
        else:
            read = _BoundedBodyReader(
                self.rfile, int(self.headers.get("Content-Length", 0) or 0)
            ).read
        client_trace_id = self.headers.get(TRACE_HEADER)
        deadline_s = self._deadline_s()
        frames = 0
        rejection: DeniedResponse | ThrottledResponse | None = None
        with tempfile.SpooledTemporaryFile(max_size=1 << 23) as frames_out:
            try:
                for frame in wirebin.iter_request_frames(read):
                    body, rejection = self.server.route_frame(
                        frame, trace_id=client_trace_id, deadline_s=deadline_s
                    )
                    frames += 1
                    frames_out.write(body)
            except ValueError as error:
                self.close_connection = True
                if frames:
                    self.server.telemetry.increment("router.client_errors")
                    frames_out.write(
                        wirebin.encode_error_frame(
                            ErrorResponse(
                                request_kind="binary-frame",
                                error=type(error).__name__,
                                message=f"stream aborted after {frames} "
                                f"dispatched frame(s): {error}",
                            )
                        )
                    )
                else:
                    self._send_json(
                        400,
                        dumps_response(self._client_error("binary-frame", error)),
                    )
                    return
            except ShardUnavailable as error:
                self.close_connection = True
                if frames:
                    # PR 5's torn-stream semantics across the process
                    # boundary: the shard died mid-stream, so the caller
                    # gets every completed frame plus a typed abort marker
                    # telling it exactly how many executed.
                    self.server.telemetry.increment("router.stream_aborts")
                    frames_out.write(
                        wirebin.encode_error_frame(
                            ErrorResponse(
                                request_kind="binary-frame",
                                error="ShardUnavailable",
                                message=f"stream aborted after {frames} "
                                f"dispatched frame(s): {error}",
                            )
                        )
                    )
                else:
                    self._send_unavailable("binary-frame", error)
                    return
            except _WorkerFault as fault:
                self.close_connection = True
                if frames:
                    frames_out.write(
                        wirebin.encode_error_frame(
                            ErrorResponse(
                                request_kind="binary-frame",
                                error="RuntimeError",
                                message=f"stream aborted after {frames} "
                                f"dispatched frame(s): {fault}",
                            )
                        )
                    )
                else:
                    self._send_raw(fault.status, fault.body, "application/json")
                    return
            except Exception as error:  # defensive: routing maps errors
                self.server.telemetry.increment("router.server_errors")
                self.close_connection = True
                self._send_json(
                    500,
                    dumps_response(
                        ErrorResponse(
                            request_kind="binary-frame",
                            error=type(error).__name__,
                            message=str(error),
                        )
                    ),
                )
                return
            status = 200
            headers: dict[str, str] = {}
            if client_trace_id:
                headers[TRACE_HEADER] = client_trace_id
            if frames == 1 and rejection is not None:
                if isinstance(rejection, ThrottledResponse):
                    status = 429
                    headers["Retry-After"] = str(
                        max(1, round(rejection.retry_after_s + 0.5))
                    )
                else:
                    status = rejection.http_status
            length = frames_out.tell()
            frames_out.seek(0)
            self.send_response(status)
            self.send_header("Content-Type", wirebin.CONTENT_TYPE)
            self.send_header("Content-Length", str(length))
            if self.close_connection:
                self.send_header("Connection", "close")
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            shutil.copyfileobj(frames_out, self.wfile)

    # ------------------------------------------------------------------ #
    # JSON routing
    # ------------------------------------------------------------------ #

    def _route_user_id(self, payload: Any) -> str | None:
        """The routing key of one JSON request/envelope payload."""
        if not isinstance(payload, dict):
            return None
        request = payload.get("request")
        if isinstance(request, dict):  # v2 envelope
            user_id = request.get("user_id")
        else:  # v1 bare request
            user_id = payload.get("user_id")
        return user_id if isinstance(user_id, str) and user_id else None

    def _request_kind(self, payload: Any) -> str | None:
        """The wire kind of one JSON request/envelope payload."""
        if not isinstance(payload, dict):
            return None
        request = payload.get("request")
        source = request if isinstance(request, dict) else payload
        kind = source.get("kind")
        return kind if isinstance(kind, str) else None

    def _deadline_s(self) -> float | None:
        """The client's total-request budget from ``X-Deadline-S``."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
        return value if value > 0.0 else None

    def _forward_headers(self) -> dict[str, str]:
        forwarded = {}
        for name in (TRACE_HEADER, DEADLINE_HEADER):
            value = self.headers.get(name)
            if value:
                forwarded[name] = value
        return forwarded

    def _relay(self, status: int, data: bytes, headers: Mapping[str, str]) -> None:
        """Answer with a worker's response, verbatim."""
        relayed = {
            name: headers[name]
            for name in ("Retry-After", TRACE_HEADER)
            if name in headers
        }
        self._send_raw(
            status,
            data,
            headers.get("Content-Type", "application/json"),
            relayed,
        )

    def _handle_json_single(self, payload: dict, raw: bytes) -> None:
        user_id = self._route_user_id(payload)
        if user_id is None:
            self._send_json(
                400,
                dumps_response(
                    self._client_error(
                        "transport",
                        ValueError(
                            "cannot route: the request carries no user_id"
                        ),
                    )
                ),
            )
            return
        shard = self.server.ring.shard_for(user_id, exclude=self.server.draining())
        status, data, headers = self.server.reliable_exchange(
            shard,
            "POST",
            self.path,
            raw,
            "application/json",
            self._forward_headers(),
            idempotent=self._request_kind(payload) == "authenticate",
            deadline_s=self._deadline_s(),
        )
        self._relay(status, data, headers)

    def _handle_json_batch(self, payloads: list) -> None:
        """Split a JSON batch by ``user_id`` and merge answers by position."""
        legacy = self.path == REQUESTS_PATH
        answers: list[Any] = [None] * len(payloads)
        groups: dict[int, list[int]] = {}
        for index, item in enumerate(payloads):
            user_id = self._route_user_id(item)
            if user_id is None:
                # Unroutable items answer in place with a typed error (the
                # worker transport does the same for malformed ones).
                error = ErrorResponse(
                    request_kind="envelope" if not legacy else "transport",
                    error="ValueError",
                    message="cannot route: the request carries no user_id",
                )
                if legacy:
                    answers[index] = response_to_payload(error)
                else:
                    request_id = (
                        str(item.get("request_id", ""))
                        if isinstance(item, dict)
                        else ""
                    )
                    answers[index] = sealed_to_payload(
                        SealedResponse(response=error, request_id=request_id)
                    )
                continue
            groups.setdefault(
                self.server.ring.shard_for(user_id, exclude=self.server.draining()),
                [],
            ).append(index)
        headers = self._forward_headers()
        deadline_s = self._deadline_s()
        for shard in sorted(groups):
            indices = groups[shard]
            body = serialization.dumps([payloads[index] for index in indices])
            status, data, _ = self.server.reliable_exchange(
                shard,
                "POST",
                self.path,
                body.encode("utf-8"),
                "application/json",
                headers,
                idempotent=all(
                    self._request_kind(payloads[index]) == "authenticate"
                    for index in indices
                ),
                deadline_s=deadline_s,
            )
            if status != 200:
                # Whole-batch rejections (batch-too-large throttles) relay
                # as the whole request's answer.
                raise _WorkerFault(shard, status, data)
            merged = json.loads(data.decode("utf-8"))
            if not isinstance(merged, list) or len(merged) != len(indices):
                raise _WorkerFault(shard, 502, data)
            for position, index in enumerate(indices):
                answers[index] = merged[position]
        self._send_json(200, serialization.dumps(answers))

    def _handle_admin(self, payload: Any, raw: bytes) -> None:
        """Route one admin envelope: per-user ops to the owning shard,
        fleet-wide ops (snapshot, evict, detector training) to every shard.

        A broadcast succeeds only when every live shard accepts it; the
        lowest shard's sealed response answers for the fleet (per-shard
        outcomes differ only in shard-local statistics), and the first
        failure relays verbatim instead.
        """
        if isinstance(payload, list):
            self._send_json(
                400,
                dumps_response(
                    self._client_error(
                        "transport",
                        TypeError(
                            f"POST {V2_ADMIN_PATH} accepts a single envelope; "
                            "admin operations do not batch"
                        ),
                    )
                ),
            )
            return
        if self._request_kind(payload) == "drain-shard":
            # The one admin op the router answers itself: only it owns a
            # ring to rebalance (workers reject it with a typed 400).
            self._handle_drain(payload)
            return
        user_id = self._route_user_id(payload)
        headers = self._forward_headers()
        deadline_s = self._deadline_s()
        if user_id is not None:
            shard = self.server.ring.shard_for(
                user_id, exclude=self.server.draining()
            )
            status, data, response_headers = self.server.reliable_exchange(
                shard,
                "POST",
                self.path,
                raw,
                "application/json",
                headers,
                deadline_s=deadline_s,
            )
            self._relay(status, data, response_headers)
            return
        self.server.telemetry.increment("router.admin_broadcasts")
        first: tuple[int, bytes, Mapping[str, str]] | None = None
        failure: tuple[int, bytes, Mapping[str, str]] | None = None
        for shard in range(self.server.pool.n_shards):
            status, data, response_headers = self.server.reliable_exchange(
                shard,
                "POST",
                self.path,
                raw,
                "application/json",
                headers,
                deadline_s=deadline_s,
            )
            if status >= 400 and failure is None:
                failure = (status, data, response_headers)
            if first is None:
                first = (status, data, response_headers)
        answer = failure if failure is not None else first
        assert answer is not None  # n_shards >= 1
        self._relay(*answer)

    def _handle_drain(self, payload: Any) -> None:
        """Execute a ``drain-shard`` envelope against the router's ring.

        Requires the cluster operator credential (the pool's API key);
        draining flips the shard out of the routing set atomically, so
        every decision after the 200 excludes it — in-flight exchanges
        complete untouched.  The sealed response reports the resulting
        active set for the operator's runbook.
        """
        if not isinstance(payload, dict):
            self._send_json(
                400,
                dumps_response(
                    self._client_error(
                        "drain-shard",
                        TypeError("drain-shard takes a single v2 envelope"),
                    )
                ),
            )
            return
        request_id = str(payload.get("request_id", ""))

        def _answer(status: int, response: Any) -> None:
            sealed = SealedResponse(response=response, request_id=request_id)
            self._send_json(status, serialization.dumps(sealed_to_payload(sealed)))

        expected = self.server.admin_api_key
        if expected is None or payload.get("api_key") != expected:
            self.server.telemetry.increment("router.drain_denied")
            denied = DeniedResponse(
                request_kind="drain-shard",
                code=CODE_UNKNOWN_KEY,
                message="drain-shard requires the cluster operator credential",
            )
            _answer(denied.http_status, denied)
            return
        try:
            request = request_from_payload(payload["request"])
            if not isinstance(request, DrainShardRequest):
                raise TypeError(
                    f"expected a drain-shard request, got "
                    f"{type(request).__name__}"
                )
            active = self.server.set_draining(
                request.shard, undrain=request.undrain
            )
        except (KeyError, TypeError, ValueError) as error:
            self._send_json(
                400,
                serialization.dumps(
                    sealed_to_payload(
                        SealedResponse(
                            response=self._client_error("drain-shard", error),
                            request_id=request_id,
                        )
                    )
                ),
            )
            return
        _answer(
            200,
            DrainShardResponse(
                shard=request.shard,
                draining=not request.undrain,
                active_shards=active,
            ),
        )


class ShardRouter(ThreadingHTTPServer):
    """The cluster's front door: one HTTP endpoint over N shard workers.

    Speaks the worker transport's exact wire surface — ``/v1/requests``,
    ``/v2/requests`` (JSON and binary), ``/v2/admin``, ``/healthz``,
    ``/metrics`` — so any :class:`~repro.service.transport.ServiceClient`
    points at the router unchanged.  Requests route by consistent-hashed
    ``user_id``; multi-request frames and JSON batches are split
    per-shard, fanned out concurrently over keep-alive connections, and
    merged back in request order.

    Parameters
    ----------
    pool:
        A :class:`WorkerPool` (or :class:`StaticEndpoints`) naming the
        shard servers; the router's hash ring takes its size from it.
    tracer:
        Optional router-side tracer: each binary frame gets one trace
        with split/dispatch/merge spans, and its id is forwarded to the
        workers so worker-side events share it.
    timeout_s:
        Per-exchange socket timeout towards workers.
    retry_policy:
        Retry budget for shard exchanges (:class:`RetryPolicy`; ``None``
        disables retries entirely).  Default: the snappy
        ``RetryPolicy()`` — transient worker blips and fast respawns heal
        invisibly, bounded by the client's ``X-Deadline-S`` when sent.
    hedge_policy:
        Straggler hedging (:class:`HedgePolicy`); ``None`` (default)
        disables it.
    admin_api_key:
        Credential required by the router-resident ``drain-shard`` admin
        operation (defaults to the pool's cluster API key; ``None`` if
        the pool has none — drain requests are then denied).

    When the pool carries a fleet quota (``caller_rate`` over a
    ``quota_path``), the router charges that shared bucket **once per
    binary frame, before the split**, stamps every sub-frame ``prepaid``
    (workers spawned with ``--trust-prepaid`` skip their own charge) and
    refunds the charge when the frame fails outright — so a frame split
    across K shards, retried or hedged, costs exactly its request count.
    """

    daemon_threads = True
    allow_reuse_address = True
    # Dozens of client pool threads connect at once; the stdlib default
    # backlog of 5 drops the burst under load.
    request_queue_size = 128

    def __init__(
        self,
        pool: WorkerPool | StaticEndpoints,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 30.0,
        tracer: Tracer | None = None,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        hedge_policy: HedgePolicy | None = None,
        admin_api_key: str | None = None,
    ) -> None:
        super().__init__((host, port), _RouterRequestHandler)
        self.pool = pool
        self.ring = HashRing(pool.n_shards)
        self.timeout_s = float(timeout_s)
        self.tracer = tracer
        self.retry_policy = retry_policy
        self.hedge_policy = hedge_policy
        self.admin_api_key = (
            admin_api_key
            if admin_api_key is not None
            else getattr(pool, "api_key", None)
        )
        # Exactly-once quota: the router's own handle on the pool's
        # fleet-wide bucket (None when the pool enforces no quota — the
        # workers then charge per sub-frame exactly as before).
        quota_path = getattr(pool, "quota_path", None)
        quota_rate = float(getattr(pool, "caller_rate", 0.0) or 0.0)
        quota_burst = float(getattr(pool, "caller_burst", 0.0) or 0.0)
        self.frame_quota = (
            SharedTokenBucket(quota_path, quota_rate, quota_burst or None)
            if quota_path is not None and quota_rate > 0.0
            else None
        )
        self.telemetry = TelemetryHub()
        self.started_at = monotonic()
        self._draining: set[int] = set()
        self._draining_lock = threading.Lock()
        self._serve_thread: threading.Thread | None = None
        self._connections: dict[tuple[str, int], list[HTTPConnection]] = {}
        self._connections_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # worker connections (keep-alive, keyed by endpoint so restarts
    # naturally retire stale sockets)
    # ------------------------------------------------------------------ #

    def _checkout(
        self, endpoint: tuple[str, int]
    ) -> tuple[HTTPConnection, bool]:
        with self._connections_lock:
            stack = self._connections.get(endpoint)
            if stack:
                return stack.pop(), True
        return HTTPConnection(endpoint[0], endpoint[1], timeout=self.timeout_s), False

    def _checkin(self, endpoint: tuple[str, int], conn: HTTPConnection) -> None:
        with self._connections_lock:
            self._connections.setdefault(endpoint, []).append(conn)

    def _close_connections(self) -> None:
        with self._connections_lock:
            stacks = list(self._connections.values())
            self._connections.clear()
        for stack in stacks:
            for conn in stack:
                conn.close()

    def worker_exchange(
        self,
        shard: int,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One HTTP exchange with *shard*'s worker.

        Send-phase failures on a reused keep-alive socket retry once on a
        fresh connection (nothing was dispatched); a failure after the
        request went out does **not** retry — the worker may have executed
        a non-idempotent operation — and raises :class:`ShardUnavailable`.

        Raises
        ------
        ShardUnavailable
            If the shard is marked down or cannot be exchanged with.
        """
        endpoint = self.pool.endpoint(shard)
        if endpoint is None:
            self.telemetry.increment("router.shard_errors")
            raise ShardUnavailable(shard, "worker process is down")
        extra = dict(headers or {})
        if content_type is not None:
            extra["Content-Type"] = content_type
        attempts = 0
        while True:
            conn, reused = self._checkout(endpoint)
            attempts += 1
            try:
                conn.request(method, path, body=body, headers=extra)
            except (OSError, HTTPException) as error:
                conn.close()
                if reused and attempts == 1:
                    continue  # stale keep-alive socket; nothing dispatched
                self._report_failure(shard, error)
                raise ShardUnavailable(
                    shard, f"{type(error).__name__}: {error}", dispatched=False
                ) from error
            try:
                response = conn.getresponse()
                data = response.read()
            except (OSError, HTTPException) as error:
                conn.close()
                self._report_failure(shard, error)
                raise ShardUnavailable(
                    shard, f"{type(error).__name__}: {error}", dispatched=True
                ) from error
            self._checkin(endpoint, conn)
            return response.status, data, dict(response.getheaders())

    def _report_failure(self, shard: int, error: Exception) -> None:
        self.telemetry.increment("router.shard_errors")
        self.pool.report_failure(shard, f"{type(error).__name__}: {error}")

    def reliable_exchange(
        self,
        shard: int,
        method: str,
        path: str,
        body: bytes | None = None,
        content_type: str | None = None,
        headers: Mapping[str, str] | None = None,
        idempotent: bool = False,
        deadline_s: float | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """:meth:`worker_exchange` under the router's retry policy.

        A failure before dispatch always retries (the request never
        reached a worker); a failure after dispatch retries only when
        *idempotent*.  Each attempt re-resolves the shard's endpoint, so
        a worker the health loop respawned mid-backoff is picked up on
        its new port.  *deadline_s* caps the total time spent (the
        client's ``X-Deadline-S`` budget); the policy deadline applies
        either way.

        Raises
        ------
        ShardUnavailable
            When retries are disabled, disallowed, or exhausted.
        """
        policy = self.retry_policy
        if policy is None:
            return self.worker_exchange(shard, method, path, body, content_type, headers)
        budget = (
            policy.deadline_s
            if deadline_s is None
            else min(float(deadline_s), policy.deadline_s)
        )
        deadline = monotonic() + budget
        attempt = 0
        while True:
            try:
                result = self.worker_exchange(
                    shard, method, path, body, content_type, headers
                )
            except ShardUnavailable as error:
                if error.dispatched and not idempotent:
                    raise
                attempt += 1
                wait = policy.backoff_s(attempt - 1)
                if attempt >= policy.max_attempts or monotonic() + wait > deadline:
                    self.telemetry.increment("router.retry_exhausted")
                    raise
                self.telemetry.increment("router.retries")
                sleep(wait)
                continue
            if attempt:
                self.telemetry.increment("router.retry_successes")
            return result

    def _hedge_delay_s(self) -> float | None:
        """The straggler threshold, or ``None`` while hedging is off or
        the latency histogram is still too thin to estimate a tail."""
        policy = self.hedge_policy
        if policy is None:
            return None
        histogram = self.telemetry.histogram("router.exchange")
        if histogram.count < policy.min_samples:
            return None
        quantile = histogram.quantile(policy.quantile)
        return min(max(quantile, policy.min_delay_s), policy.max_delay_s)

    def _hedged_exchange(
        self,
        shard: int,
        payload: bytes,
        headers: Mapping[str, str],
        idempotent: bool,
        deadline_s: float | None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """One sub-frame exchange, hedged against stragglers.

        The primary dispatch gets :meth:`_hedge_delay_s` to answer; past
        that, an identical sub-frame goes out (endpoint re-resolved, so
        a respawned replica serves it) and the first answer wins.  The
        loser's outcome is discarded — it records no latency sample, and
        the frame's quota was charged before the split, so a duplicate
        execution can never double-charge.
        """
        delay = self._hedge_delay_s() if idempotent else None
        started = perf_counter()
        if delay is None:
            result = self.reliable_exchange(
                shard,
                "POST",
                V2_REQUESTS_PATH,
                payload,
                wirebin.CONTENT_TYPE,
                headers,
                idempotent=idempotent,
                deadline_s=deadline_s,
            )
            self.telemetry.observe("router.exchange", perf_counter() - started)
            return result
        condition = threading.Condition()
        outcomes: list[tuple[str, bool, Any]] = []

        def _attempt(label: str) -> None:
            try:
                outcome = (
                    label,
                    True,
                    self.reliable_exchange(
                        shard,
                        "POST",
                        V2_REQUESTS_PATH,
                        payload,
                        wirebin.CONTENT_TYPE,
                        headers,
                        idempotent=True,
                        deadline_s=deadline_s,
                    ),
                )
            except BaseException as error:
                outcome = (label, False, error)
            with condition:
                outcomes.append(outcome)
                condition.notify_all()

        threading.Thread(
            target=_attempt, args=("primary",), daemon=True
        ).start()
        with condition:
            condition.wait_for(lambda: bool(outcomes), timeout=delay)
            launched = 1 if outcomes else 2
        if launched == 2:
            self.telemetry.increment("router.hedges")
            threading.Thread(
                target=_attempt, args=("hedge",), daemon=True
            ).start()
        with condition:
            condition.wait_for(
                lambda: any(ok for _, ok, _value in outcomes)
                or len(outcomes) >= launched
            )
            label, ok, value = next(
                (outcome for outcome in outcomes if outcome[1]), outcomes[0]
            )
        if not ok:
            raise value
        if label == "hedge":
            self.telemetry.increment("router.hedge_wins")
        self.telemetry.observe("router.exchange", perf_counter() - started)
        return value

    # ------------------------------------------------------------------ #
    # graceful drain + live resharding
    # ------------------------------------------------------------------ #

    def draining(self) -> frozenset[int]:
        """The shards currently excluded from new routing decisions."""
        with self._draining_lock:
            return frozenset(self._draining)

    def set_draining(self, shard: int, undrain: bool = False) -> tuple[int, ...]:
        """Mark *shard* draining (or restore it); returns the active set.

        Draining stops **new** sub-frames toward the shard — the ring's
        weighted walk rebalances its users onto the remaining shards —
        while in-flight exchanges complete untouched (nothing here closes
        a socket or signals a worker).  Deterministic: every router fed
        the same drain set makes bit-for-bit identical decisions.

        Raises
        ------
        ValueError
            If *shard* is out of range, or draining it would leave no
            active shard.
        """
        if not 0 <= shard < self.pool.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.pool.n_shards}), got {shard}"
            )
        with self._draining_lock:
            if undrain:
                self._draining.discard(shard)
            else:
                remaining = (
                    set(range(self.pool.n_shards)) - self._draining - {shard}
                )
                if not remaining:
                    raise ValueError(
                        f"cannot drain shard {shard}: it is the last active "
                        "shard — undrain another shard first"
                    )
                self._draining.add(shard)
            draining = frozenset(self._draining)
        self.telemetry.increment(
            "router.undrains" if undrain else "router.drains"
        )
        return tuple(
            index
            for index in range(self.pool.n_shards)
            if index not in draining
        )

    # ------------------------------------------------------------------ #
    # exactly-once frame quota
    # ------------------------------------------------------------------ #

    def _charge_frame(
        self, frame: wirebin.RequestFrame
    ) -> tuple[float, ThrottledResponse | None]:
        """Charge the fleet bucket once for the whole frame, pre-split.

        Returns ``(tokens charged, None)`` on grant — sub-frames are then
        stamped ``prepaid`` so workers skip their own charge — or
        ``(0, rejection)`` when the budget rejects the frame.  Frames
        carrying any credential other than the cluster's own pass through
        uncharged (the workers' per-caller quotas judge them, exactly as
        before this layer existed).
        """
        quota = self.frame_quota
        if (
            quota is None
            or frame.api_key is None
            or frame.api_key != getattr(self.pool, "api_key", None)
        ):
            return 0.0, None
        count = frame.n_requests
        if count > quota.burst:
            rejection = ThrottledResponse(
                request_kind=frame.op,
                reason=REASON_BATCH_EXCEEDS_BURST,
                queue_depth=0,
                max_depth=int(quota.burst),
                retry_after_s=quota.burst / quota.rate_per_s,
            )
        else:
            retry_after = quota.acquire(count)
            if retry_after == 0.0:
                self.telemetry.increment("router.quota_charges")
                return float(count), None
            rejection = ThrottledResponse(
                request_kind=frame.op,
                reason=REASON_RATE_LIMITED,
                queue_depth=0,
                max_depth=int(quota.burst),
                retry_after_s=retry_after,
            )
        self.telemetry.increment("router.quota_throttled")
        return 0.0, rejection

    def _refund_frame(self, charged: float) -> None:
        """Undo a frame's pre-split charge after a total failure.

        The caller re-sends the whole frame on a 503/abort, so keeping
        the charge would bill the retry twice; the refund restores the
        exactly-once invariant (capped at burst, so refunds never mint)."""
        if charged <= 0.0 or self.frame_quota is None:
            return
        self.frame_quota.refund(charged)
        self.telemetry.increment("router.quota_refunds")

    # ------------------------------------------------------------------ #
    # binary frame routing
    # ------------------------------------------------------------------ #

    def route_frame(
        self,
        frame: wirebin.RequestFrame,
        trace_id: str | None = None,
        deadline_s: float | None = None,
    ) -> tuple[bytes, DeniedResponse | ThrottledResponse | None]:
        """Split one request frame per shard, fan out, merge in order.

        Returns ``(response frame bytes, frame-level rejection or None)``
        — the same contract as the worker transport's ``dispatch_frame``,
        so the handler maps single-frame rejections to their HTTP status
        identically.  Draining shards receive no new sub-frames (the ring
        walks their users onto the active shards); the fleet quota, when
        the pool carries one, is charged exactly once here and refunded
        if the frame fails outright.

        Raises
        ------
        ShardUnavailable
            If any involved shard is down or fails mid-exchange (after
            the retry policy's budget, when one is set).
        """
        self.telemetry.increment("router.frames")
        trace = (
            self.tracer.start("router-frame", trace_id=trace_id)
            if self.tracer is not None
            else None
        )
        try:
            charged, throttle = self._charge_frame(frame)
            if throttle is not None:
                body = wirebin.encode_rejection_frame(
                    frame.op, throttle, frame.frame_id, frame.n_requests
                )
                self.telemetry.increment("router.rejected_frames")
                return body, throttle
            try:
                return self._route_charged_frame(
                    frame, trace, trace_id, deadline_s, charged > 0.0
                )
            except _FrameRejected as rejected:
                # The workers rejected the frame before running it.
                self._refund_frame(charged)
                return rejected.body, rejected.rejection
            except BaseException:
                # Total failure: nothing merged, the caller re-sends the
                # whole frame — return its tokens so the retry is free.
                self._refund_frame(charged)
                raise
        finally:
            if trace is not None and self.tracer is not None:
                self.tracer.finish_frame(trace, frame.user_ids)

    def _route_charged_frame(
        self,
        frame: wirebin.RequestFrame,
        trace: Any,
        trace_id: str | None,
        deadline_s: float | None,
        prepaid: bool,
    ) -> tuple[bytes, DeniedResponse | ThrottledResponse | None]:
        started = perf_counter()
        groups = self.ring.split(frame.user_ids, exclude=self.draining())
        shards = sorted(groups)
        # The prepaid marker is always stamped by the router, never
        # echoed from the client frame: an unpaid frame cannot smuggle
        # the flag past the workers' own quota charge.
        payloads = {
            shard: wirebin.encode_frame_slice(
                frame, groups[shard], prepaid=prepaid
            )
            for shard in shards
        }
        if trace is not None:
            trace.add_span(SPAN_SHARD_SPLIT, perf_counter() - started)
            trace.annotate(shards=len(shards), requests=frame.n_requests)
        forward_trace_id = trace.trace_id if trace is not None else trace_id
        headers = {TRACE_HEADER: forward_trace_id} if forward_trace_id else {}
        idempotent = frame.op == "authenticate"

        started = perf_counter()
        results: dict[int, wirebin.ResponseFrame] = {}
        failures: dict[int, BaseException] = {}

        def _dispatch(shard: int) -> None:
            try:
                status, data, _ = self._hedged_exchange(
                    shard, payloads[shard], headers, idempotent, deadline_s
                )
                if not data.startswith(wirebin.MAGIC):
                    raise _WorkerFault(shard, status, data)
                frames = wirebin.decode_response_frames(data)
                if len(frames) != 1:
                    raise _WorkerFault(shard, status, data)
                results[shard] = frames[0]
            except BaseException as error:  # re-raised on the handler thread
                failures[shard] = error

        threads = [
            threading.Thread(target=_dispatch, args=(shard,), daemon=True)
            for shard in shards[1:]
        ]
        for thread in threads:
            thread.start()
        _dispatch(shards[0])
        for thread in threads:
            thread.join()
        if trace is not None:
            trace.add_span(SPAN_SHARD_DISPATCH, perf_counter() - started)
        for shard in shards:
            if shard in failures:
                raise failures[shard]

        started = perf_counter()
        caller_id = next(
            (
                results[shard].caller_id
                for shard in shards
                if results[shard].caller_id
            ),
            None,
        )
        # Any shard-level rejection answers for the whole frame: the
        # frame shares one credential, so a denial is unanimous, and a
        # shared-quota throttle means the aggregate budget is spent.
        for shard in shards:
            result = results[shard]
            if result.error is not None:
                raise _WorkerFault(
                    shard, 500, dumps_response(result.error).encode("utf-8")
                )
            rejection = result.denied or result.throttled
            if rejection is not None:
                body = wirebin.encode_rejection_frame(
                    frame.op, rejection, frame.frame_id, frame.n_requests
                )
                self.telemetry.increment("router.rejected_frames")
                raise _FrameRejected(body, rejection)
        if frame.op == "authenticate":
            body = self._merge_columns(frame, groups, results, caller_id)
        else:
            body = self._merge_payloads(frame, groups, results, caller_id)
        if trace is not None:
            trace.add_span(SPAN_SHARD_MERGE, perf_counter() - started)
        return body, None

    def _merge_columns(
        self,
        frame: wirebin.RequestFrame,
        groups: Mapping[int, Sequence[int]],
        results: Mapping[int, wirebin.ResponseFrame],
        caller_id: str | None,
    ) -> bytes:
        """Reassemble per-shard columnar results in original request order."""
        n_requests = frame.n_requests
        lengths = np.zeros(n_requests, dtype=np.int64)
        versions = np.zeros(n_requests, dtype=np.int64)
        errors: dict[int, ErrorResponse] = {}
        blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray] | None] = (
            [None] * n_requests
        )
        for shard, indices in groups.items():
            columns = results[shard].columns
            if columns is None:
                raise ValueError(
                    f"shard {shard} answered a non-columnar frame for an "
                    "authenticate dispatch"
                )
            offsets = offsets_from_lengths(columns.lengths)
            for position, original in enumerate(indices):
                start, stop = int(offsets[position]), int(offsets[position + 1])
                lengths[original] = int(columns.lengths[position])
                versions[original] = int(columns.model_versions[position])
                error = columns.errors.get(position)
                if error is not None:
                    errors[original] = error
                blocks[original] = (
                    columns.scores[start:stop],
                    columns.accepted[start:stop],
                    columns.model_context_codes[start:stop],
                )
        merged = ColumnarAuthResult(
            user_ids=frame.user_ids,
            scores=np.concatenate([block[0] for block in blocks]),
            accepted=np.concatenate([block[1] for block in blocks]),
            model_context_codes=np.concatenate([block[2] for block in blocks]),
            lengths=lengths,
            model_versions=versions,
            errors=errors,
        )
        return wirebin.encode_columnar_response(merged, frame.frame_id, caller_id)

    def _merge_payloads(
        self,
        frame: wirebin.RequestFrame,
        groups: Mapping[int, Sequence[int]],
        results: Mapping[int, wirebin.ResponseFrame],
        caller_id: str | None,
    ) -> bytes:
        """Reassemble per-shard header-borne responses (enroll / drift)."""
        responses: list[Any] = [None] * frame.n_requests
        for shard, indices in groups.items():
            payloads = results[shard].payloads or ()
            if len(payloads) != len(indices):
                raise ValueError(
                    f"shard {shard} answered {len(payloads)} response(s) for "
                    f"{len(indices)} request(s)"
                )
            for position, original in enumerate(indices):
                responses[original] = response_from_payload(payloads[position])
        return wirebin.encode_response_frame(
            frame.op, responses, frame.frame_id, caller_id
        )

    # ------------------------------------------------------------------ #
    # fleet telemetry + health
    # ------------------------------------------------------------------ #

    def fleet_metrics(self) -> dict[str, Any]:
        """Scrape every live worker and merge: the cluster's one view.

        Counters sum (including the per-caller ``callers.*`` series),
        histogram families merge bucket-wise — exactly equivalent to the
        union of the worker streams — and the router's own ``router.*``
        counters ride along.  Workers' sliding-window latency summaries
        are per-process by construction (raw sample windows do not merge)
        and are deliberately omitted; the histograms carry the mergeable
        quantiles.
        """
        counters: dict[str, int] = {}
        callers: dict[str, dict[str, Any]] = {}
        histogram_maps: list[Mapping[str, Mapping]] = []
        scraped: list[int] = []
        for shard in range(self.pool.n_shards):
            try:
                _, metrics_data, _ = self.worker_exchange(shard, "GET", METRICS_PATH)
                _, hist_data, _ = self.worker_exchange(shard, "GET", HISTOGRAMS_PATH)
            except ShardUnavailable:
                continue
            snapshot = json.loads(metrics_data.decode("utf-8"))
            for name, value in snapshot.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for caller_id, payload in snapshot.get("callers", {}).items():
                merged = callers.setdefault(
                    caller_id, {key: 0 for key in ("requests", "denied", "throttled")}
                )
                for key in ("requests", "denied", "throttled"):
                    merged[key] += int(payload.get(key, 0))
                for key in ("scopes", "rate_limit"):
                    if key in payload:
                        merged[key] = payload[key]
            histogram_maps.append(json.loads(hist_data.decode("utf-8")))
            scraped.append(shard)
        router_counters = self.telemetry.snapshot()["counters"]
        for name, value in router_counters.items():
            counters[name] = counters.get(name, 0) + int(value)
        return {
            "counters": counters,
            "callers": callers,
            "histograms": merge_histogram_snapshots(histogram_maps),
            "shards_scraped": scraped,
            "n_shards": self.pool.n_shards,
        }

    def health(self) -> dict[str, Any]:
        """Readiness: router liveness plus per-shard worker liveness.

        Carries the single-process ``/healthz`` keys too
        (``frontend_requests``, ``transport_requests``, ``queue_depth``
        summed across live workers) so health tooling written against
        one ``ServiceHTTPServer`` reads the cluster unchanged.  Each
        live worker's own health document rides along under its shard's
        ``shards`` entry; a worker that cannot be scraped keeps the
        pool's process-level view only.
        """
        shards = self.pool.health()
        totals = {"frontend_requests": 0, "transport_requests": 0, "queue_depth": 0}
        for shard_id, report in shards.items():
            if not report.get("alive"):
                continue
            try:
                _, data, _ = self.worker_exchange(int(shard_id), "GET", HEALTH_PATH)
            except ShardUnavailable:
                continue
            worker_health = json.loads(data.decode("utf-8"))
            report["worker"] = worker_health
            for key in totals:
                totals[key] += int(worker_health.get(key, 0))
        alive = sum(1 for report in shards.values() if report.get("alive"))
        draining = sorted(self.draining())
        crash_stamps = [
            report["last_crash_ts"]
            for report in shards.values()
            if report.get("last_crash_ts")
        ]
        return {
            "status": "ok" if alive == self.pool.n_shards else "degraded",
            "ready": alive == self.pool.n_shards,
            "uptime_s": monotonic() - self.started_at,
            "router_requests": self.telemetry.counter_value("router.requests"),
            **totals,
            "n_shards": self.pool.n_shards,
            "shards_alive": alive,
            "draining": draining,
            "restarts": sum(
                int(report.get("restarts", 0) or 0) for report in shards.values()
            ),
            "last_crash_ts": max(crash_stamps) if crash_stamps else None,
            "shards": shards,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return self.server_address[1]

    def serve_background(self) -> "ShardRouter":
        """Start serving on a daemon thread; returns ``self`` (idempotent)."""
        if self._serve_thread is None or not self._serve_thread.is_alive():
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="shard-router", daemon=True
            )
            self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and join the background thread."""
        super().shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None

    def server_close(self) -> None:
        super().server_close()
        self._close_connections()

    def __enter__(self) -> "ShardRouter":
        return self.serve_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
        self.server_close()


# --------------------------------------------------------------------- #
# CLI: worker + router subcommands
# --------------------------------------------------------------------- #


def _watch_stdin(stop: threading.Event) -> None:
    """Signal *stop* when stdin reaches EOF (the spawning router died).

    The pool hands every worker a pipe it never writes to; the pipe
    closes when the router exits — gracefully or by SIGKILL — so workers
    can never outlive it as orphans.  Reads the raw descriptor (not the
    buffered ``sys.stdin``) so this daemon thread can never hold the
    buffer lock the interpreter needs during finalization.
    """
    try:
        fd = sys.stdin.fileno()
        while os.read(fd, 4096):
            pass
    except (OSError, ValueError):
        pass
    stop.set()


def _install_stop_handlers(stop: threading.Event) -> None:
    def _graceful(signum: int, frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)


def _run_worker(args: argparse.Namespace) -> int:
    from repro.service.frontend import MicroBatchQueue, ServiceFrontend
    from repro.service.transport import ServiceHTTPServer

    if args.registry_root is not None:
        from repro.service.gateway import AuthenticationGateway
        from repro.service.registry import ModelRegistry

        registry = ModelRegistry(root=args.registry_root)
        loaded = registry.load()
        print(
            f"shard {args.shard_index}/{args.n_shards}: loaded {loaded} "
            f"item(s) from {args.registry_root}",
            flush=True,
        )
        frontend = ServiceFrontend(AuthenticationGateway(registry=registry))
    else:
        frontend = ServiceFrontend()

    queue = (
        None
        if args.no_queue
        else MicroBatchQueue(frontend, max_depth=args.max_depth or None)
    )
    tracer = (
        Tracer(
            sample_rate=args.trace_sample_rate,
            jsonl_path=args.trace_jsonl,
            telemetry=frontend.telemetry,
        )
        if args.trace_sample_rate > 0.0 or args.trace_jsonl
        else None
    )
    api_key = os.environ.get(CLUSTER_API_KEY_ENV) or wirebin.new_frame_id()
    scopes = tuple(
        scope.strip() for scope in args.caller_scopes.split(",") if scope.strip()
    )
    stop = threading.Event()
    with ServiceHTTPServer(
        frontend,
        host=args.host,
        port=args.port,
        queue=queue,
        tracer=tracer,
        trust_prepaid_frames=args.trust_prepaid,
        restarts=args.restarts,
        last_crash_ts=args.last_crash_ts,
    ) as server:
        server.callers.register(args.caller_id, scopes, api_key=api_key)
        if args.caller_rate > 0.0:
            if args.quota_path:
                # The fleet-wide quota: every shard charges the same
                # file-backed bucket, so the caller's aggregate rate is
                # what a single process would have enforced.
                server.callers.attach_rate_limit(
                    args.caller_id,
                    SharedTokenBucket(
                        args.quota_path,
                        args.caller_rate,
                        args.caller_burst or None,
                    ),
                )
            else:
                server.callers.set_rate_limit(
                    args.caller_id, args.caller_rate, args.caller_burst or None
                )
        _install_stop_handlers(stop)
        threading.Thread(target=_watch_stdin, args=(stop,), daemon=True).start()
        print(f"READY {server.port}", flush=True)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print(
            f"shard {args.shard_index}: draining and shutting down...", flush=True
        )
    return 0


def _run_router(args: argparse.Namespace) -> int:
    pool = WorkerPool(
        args.workers,
        registry_root=args.registry_root,
        host=args.host,
        caller_id=args.caller_id,
        caller_rate=args.caller_rate,
        caller_burst=args.caller_burst,
        quota_path=args.quota_path,
        restart=not args.no_restart,
        no_queue=args.no_queue,
    )
    stop = threading.Event()
    print(f"spawning {args.workers} shard worker(s)...", flush=True)
    pool.start()
    try:
        tracer = (
            Tracer(
                sample_rate=args.trace_sample_rate,
                jsonl_path=args.trace_jsonl,
            )
            if args.trace_sample_rate > 0.0 or args.trace_jsonl
            else None
        )
        retry_policy = (
            None
            if args.no_retry
            else RetryPolicy(
                max_attempts=args.retry_attempts,
                deadline_s=args.retry_deadline_s,
            )
        )
        hedge_policy = (
            HedgePolicy(
                quantile=args.hedge_quantile,
                min_samples=args.hedge_min_samples,
            )
            if args.hedge_quantile > 0.0
            else None
        )
        with ShardRouter(
            pool,
            host=args.host,
            port=args.port,
            tracer=tracer,
            retry_policy=retry_policy,
            hedge_policy=hedge_policy,
        ) as router:
            _install_stop_handlers(stop)
            print(f"READY {router.port}", flush=True)
            print(
                f"routing {V2_REQUESTS_PATH} (JSON + binary), {REQUESTS_PATH} "
                f"and {V2_ADMIN_PATH} on http://{args.host}:{router.port} "
                f"across {args.workers} shard(s) "
                f"(healthz: {HEALTH_PATH}, merged metrics: {METRICS_PATH})",
                flush=True,
            )
            print(
                f"cluster caller {args.caller_id!r} API key: {pool.api_key}",
                flush=True,
            )
            try:
                stop.wait()
            except KeyboardInterrupt:
                pass
            print("\nshutting down (draining, then closing the pool)...", flush=True)
    finally:
        pool.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: run a shard worker or the router + pool."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.cluster",
        description="Multi-process sharded serving: shard router + workers.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    worker = commands.add_parser("worker", help="serve one shard")
    worker.add_argument("--shard-index", type=int, required=True)
    worker.add_argument("--n-shards", type=int, required=True)
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0)
    worker.add_argument(
        "--registry-root",
        default=None,
        help="persisted ModelRegistry directory to load and serve",
    )
    worker.add_argument("--caller-id", default=CLUSTER_CALLER_ID)
    worker.add_argument("--caller-scopes", default="data:write,admin")
    worker.add_argument("--caller-rate", type=float, default=0.0)
    worker.add_argument("--caller-burst", type=float, default=0.0)
    worker.add_argument(
        "--quota-path",
        default=None,
        help="shared token-bucket state file (fleet-wide quota)",
    )
    worker.add_argument("--max-depth", type=int, default=1024)
    worker.add_argument("--no-queue", action="store_true")
    worker.add_argument(
        "--trust-prepaid",
        action="store_true",
        help="honor the router's prepaid marker on sub-frames (skip the "
        "worker-side quota charge; only safe behind a charging router)",
    )
    worker.add_argument(
        "--restarts",
        type=int,
        default=0,
        help="restart count inherited from the pool (reported on /healthz)",
    )
    worker.add_argument(
        "--last-crash-ts",
        type=float,
        default=None,
        help="wall-clock time of this shard's last crash (for /healthz)",
    )
    worker.add_argument("--trace-sample-rate", type=float, default=0.0)
    worker.add_argument("--trace-jsonl", default=None)
    worker.set_defaults(run=_run_worker)

    router = commands.add_parser("router", help="spawn a pool and route to it")
    router.add_argument("--workers", type=int, default=4)
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=8415)
    router.add_argument("--registry-root", default=None)
    router.add_argument("--caller-id", default=CLUSTER_CALLER_ID)
    router.add_argument("--caller-rate", type=float, default=0.0)
    router.add_argument("--caller-burst", type=float, default=0.0)
    router.add_argument("--quota-path", default=None)
    router.add_argument("--no-queue", action="store_true")
    router.add_argument(
        "--no-restart",
        action="store_true",
        help="do not respawn crashed workers (crash-semantics testing)",
    )
    router.add_argument(
        "--no-retry",
        action="store_true",
        help="disable router-side retries (a dead shard answers 503 "
        "immediately)",
    )
    router.add_argument(
        "--retry-attempts",
        type=int,
        default=RetryPolicy.max_attempts,
        help="max exchange attempts per sub-frame (default %(default)s)",
    )
    router.add_argument(
        "--retry-deadline-s",
        type=float,
        default=RetryPolicy.deadline_s,
        help="total retry budget per request in seconds; the client's "
        "X-Deadline-S header can only shrink it (default %(default)s)",
    )
    router.add_argument(
        "--hedge-quantile",
        type=float,
        default=0.0,
        help="hedge straggling authenticate sub-frames past this latency "
        "percentile (0 disables hedging, the default)",
    )
    router.add_argument(
        "--hedge-min-samples",
        type=int,
        default=HedgePolicy.min_samples,
        help="latency samples required before hedging arms "
        "(default %(default)s)",
    )
    router.add_argument("--trace-sample-rate", type=float, default=0.0)
    router.add_argument("--trace-jsonl", default=None)
    router.set_defaults(run=_run_router)

    args = parser.parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
