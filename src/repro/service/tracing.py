"""End-to-end request tracing for the serving path.

The paper's viability argument is a latency/overhead budget (its overhead
experiment is ``experiments/overhead.py``), yet per-operation latency
totals cannot say *where* a request's time went between admission, queue
wait, the coalesced fused pass and response framing.  This module adds
that attribution without touching the hot path when disabled:

* a :class:`TraceContext` is minted at the transport/envelope door (or
  adopted from a client-supplied ``X-Trace-Id`` header, which is echoed
  back) and carries named :class:`Span` durations plus free-form
  annotations (batch membership, cache hit/miss deltas, error outcome);
* a :class:`Tracer` owns sampling, the bounded in-memory event ring, the
  opt-in JSONL sink and slow-request logging.

**Propagation.**  Two complementary mechanisms thread a trace through the
layers, matching how the two serving forms travel:

* *object requests* (the per-request protocol types) cross the
  :class:`~repro.service.frontend.MicroBatchQueue` thread boundary as the
  same frozen object, so the tracer binds traces to them by identity in a
  :class:`weakref.WeakKeyDictionary` (:meth:`Tracer.bind` /
  :meth:`Tracer.trace_for`) — no contextvars, which a cross-thread queue
  hop would silently drop;
* *columnar batches* (:class:`~repro.service.protocol.AuthenticateColumns`)
  are rebuilt from wire bytes layer by layer, so the trace id travels as a
  field on the batch itself and :meth:`Tracer.lookup` resolves it back to
  the live context.

Finished traces export as structured JSON events.  A binary frame is one
trace shared by every request it carries; :meth:`Tracer.finish_frame`
fans it out into one event per request (shared span timings, per-request
user id and error outcome), so per-request attribution survives the
zero-copy path without per-request object cost.

Everything here is stdlib-only and thread-safe; a ``tracer=None`` default
on every integration point keeps the untraced hot path byte-identical.
"""

from __future__ import annotations

import json
import logging
import threading
import uuid
from collections import OrderedDict, deque
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Mapping, Sequence
from weakref import WeakKeyDictionary

from repro.service.telemetry import TelemetryHub

logger = logging.getLogger("repro.service.tracing")

#: HTTP header carrying a client-supplied (and echoed) trace id.
TRACE_HEADER = "X-Trace-Id"

#: Span names of the serving path's canonical stages.
SPAN_ADMISSION = "admission"
SPAN_QUEUE_WAIT = "queue_wait"
SPAN_FUSED_PASS = "fused_pass"
SPAN_RESPONSE_FRAMING = "response_framing"

#: Span names of the shard router's stages (cluster serving).  The router
#: forwards the client's trace id to each worker (``X-Trace-Id``), so one
#: id links the router event's split/dispatch/merge spans with every
#: worker-side event of the same request.
SPAN_SHARD_SPLIT = "shard_split"
SPAN_SHARD_DISPATCH = "shard_dispatch"
SPAN_SHARD_MERGE = "shard_merge"


def new_trace_id() -> str:
    """A fresh unique trace id (32 hex chars)."""
    return uuid.uuid4().hex


class Span:
    """One named, timed stage of a traced request.

    Spans store a duration (plus free-form attributes) rather than
    absolute timestamps: the queue worker measures waits on the monotonic
    clock while in-thread stages use ``perf_counter``, and durations are
    the only quantity the two clocks agree on.
    """

    __slots__ = ("name", "duration_s", "attrs")

    def __init__(self, name: str, duration_s: float, attrs: dict[str, Any]) -> None:
        self.name = name
        self.duration_s = float(duration_s)
        self.attrs = attrs

    def to_event(self) -> dict[str, Any]:
        """Plain-type form for JSON export."""
        event = {"name": self.name, "duration_s": self.duration_s}
        if self.attrs:
            event.update(self.attrs)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms)"


class TraceContext:
    """Everything recorded about one traced request (or frame).

    Spans and annotations are appended by whichever thread currently owns
    the request (handler thread, then queue worker, then handler again);
    ownership hand-offs happen through futures, so appends never race.
    """

    __slots__ = (
        "trace_id",
        "kind",
        "request_id",
        "user_id",
        "caller_id",
        "spans",
        "attrs",
        "started_s",
        "total_s",
        "_finished",
    )

    def __init__(
        self,
        trace_id: str,
        kind: str,
        request_id: str | None = None,
        user_id: str | None = None,
        caller_id: str | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.request_id = request_id
        self.user_id = user_id
        self.caller_id = caller_id
        self.spans: list[Span] = []
        self.attrs: dict[str, Any] = {}
        self.started_s = perf_counter()
        self.total_s = 0.0
        self._finished = False

    def add_span(self, name: str, duration_s: float, **attrs: Any) -> None:
        """Record one completed stage of this trace."""
        self.spans.append(Span(name, max(0.0, duration_s), attrs))

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Context manager recording its body as a named span."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add_span(name, perf_counter() - start, **attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach free-form attributes (error outcome, cache deltas, ...)."""
        self.attrs.update(attrs)

    def span_named(self, name: str) -> Span | None:
        """The first recorded span called *name* (``None`` when absent)."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def to_event(self) -> dict[str, Any]:
        """The structured JSON event this trace exports as."""
        event: dict[str, Any] = {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "total_s": self.total_s,
            "spans": [span.to_event() for span in self.spans],
        }
        if self.request_id is not None:
            event["request_id"] = self.request_id
        if self.user_id is not None:
            event["user_id"] = self.user_id
        if self.caller_id is not None:
            event["caller_id"] = self.caller_id
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event


class Tracer:
    """Samples, collects and exports per-request trace events.

    Parameters
    ----------
    sample_rate:
        Fraction of minted traces kept, in ``[0, 1]``.  Sampling is
        deterministic (every ``1/rate``-th request), so a fixed workload
        always traces the same requests.  A client-supplied trace id is
        **always** sampled — a caller asking for a trace gets one.
    ring_capacity:
        Bound on retained finished events (oldest evicted first).
    jsonl_path:
        Opt-in durable sink: every finished event is appended to this file
        as one JSON line.  ``None`` (default) keeps tracing in-memory only.
    slow_request_ms:
        Threshold above which a finished trace logs its full span
        breakdown through the ``repro.service.tracing`` logger (and counts
        in ``trace.slow_requests``).  ``None`` disables slow logging.
    telemetry:
        Optional hub; tracing outcomes land in ``trace.*`` counters next
        to the rest of the service metrics.

    Raises
    ------
    ValueError
        If a knob is out of range.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        ring_capacity: int = 2048,
        jsonl_path: str | None = None,
        slow_request_ms: float | None = None,
        telemetry: TelemetryHub | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if ring_capacity < 1:
            raise ValueError(f"ring_capacity must be >= 1, got {ring_capacity}")
        if slow_request_ms is not None and slow_request_ms < 0.0:
            raise ValueError(f"slow_request_ms must be >= 0, got {slow_request_ms}")
        self.sample_rate = float(sample_rate)
        self.jsonl_path = jsonl_path
        self.slow_request_ms = slow_request_ms
        self.telemetry = telemetry
        self._events: deque[dict[str, Any]] = deque(maxlen=ring_capacity)
        self._bindings: "WeakKeyDictionary[Any, TraceContext]" = WeakKeyDictionary()
        # Live (started, unfinished) traces by id, for the columnar path
        # where the trace id travels as a field instead of an object
        # binding.  Bounded so a caller that never finishes its traces
        # cannot grow it without limit.
        self._active: "OrderedDict[str, TraceContext]" = OrderedDict()
        self._active_capacity = max(ring_capacity, 1024)
        self._seen = 0
        self._lock = threading.Lock()
        self._io_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(
        self,
        kind: str,
        trace_id: str | None = None,
        request_id: str | None = None,
        user_id: str | None = None,
        caller_id: str | None = None,
    ) -> TraceContext | None:
        """Mint a trace for one request, or ``None`` when not sampled.

        A non-``None`` *trace_id* marks a client-supplied id: it is
        adopted verbatim and always sampled.
        """
        with self._lock:
            if trace_id is None:
                self._seen += 1
                rate = self.sample_rate
                if int(self._seen * rate) <= int((self._seen - 1) * rate):
                    if self.telemetry is not None:
                        self.telemetry.increment("trace.unsampled")
                    return None
                trace_id = new_trace_id()
            trace = TraceContext(
                trace_id,
                kind,
                request_id=request_id,
                user_id=user_id,
                caller_id=caller_id,
            )
            self._active[trace_id] = trace
            while len(self._active) > self._active_capacity:
                self._active.popitem(last=False)
        if self.telemetry is not None:
            self.telemetry.increment("trace.started")
        return trace

    def lookup(self, trace_id: str | None) -> TraceContext | None:
        """The live trace carrying *trace_id* (``None`` when unknown)."""
        if trace_id is None:
            return None
        with self._lock:
            return self._active.get(trace_id)

    def bind(self, obj: Any, trace: TraceContext) -> None:
        """Attach *trace* to a request object for downstream stages.

        The binding is weak: it vanishes with the request object, so
        in-flight requests bound it and nothing leaks afterwards.  An
        object that cannot be weak-referenced is silently left unbound
        (its stages simply record no spans).
        """
        try:
            with self._lock:
                self._bindings[obj] = trace
        except TypeError:
            pass

    def trace_for(self, obj: Any) -> TraceContext | None:
        """The trace bound to *obj* (``None`` when untraced)."""
        try:
            with self._lock:
                return self._bindings.get(obj)
        except TypeError:
            return None

    def finish(self, trace: TraceContext | None) -> None:
        """Seal a trace and export its event (idempotent, ``None``-safe)."""
        if trace is None or trace._finished:
            return
        trace._finished = True
        trace.total_s = perf_counter() - trace.started_s
        with self._lock:
            self._active.pop(trace.trace_id, None)
        self._export(trace.to_event())

    def finish_frame(
        self,
        trace: TraceContext | None,
        user_ids: Sequence[str],
        errors: Mapping[int, str] | None = None,
    ) -> None:
        """Seal a frame-level trace into one event **per request**.

        A binary columnar frame is admitted, queued and scored as one
        unit, so its requests share the frame's span timings; what differs
        per request is the user and the error outcome.  Each exported
        event carries the shared spans plus its own ``user_id``,
        ``request_index`` and (when present) ``error`` — per-request
        attribution at per-frame cost.
        """
        if trace is None or trace._finished:
            return
        trace._finished = True
        trace.total_s = perf_counter() - trace.started_s
        with self._lock:
            self._active.pop(trace.trace_id, None)
        frame_event = trace.to_event()
        shared_spans = frame_event["spans"]
        shared_attrs = frame_event.get("attrs")
        for index, user_id in enumerate(user_ids):
            event: dict[str, Any] = {
                "trace_id": trace.trace_id,
                "kind": trace.kind,
                "total_s": trace.total_s,
                "spans": shared_spans,
                "request_index": index,
                "user_id": user_id,
            }
            if trace.request_id is not None:
                event["request_id"] = trace.request_id
            if trace.caller_id is not None:
                event["caller_id"] = trace.caller_id
            if shared_attrs:
                event["attrs"] = shared_attrs
            if errors and index in errors:
                event["error"] = errors[index]
            self._export(event)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def _export(self, event: dict[str, Any]) -> None:
        self._events.append(event)
        if self.telemetry is not None:
            self.telemetry.increment("trace.finished")
        if self.jsonl_path is not None:
            line = json.dumps(event, sort_keys=True)
            with self._io_lock:
                with open(self.jsonl_path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
        if (
            self.slow_request_ms is not None
            and event["total_s"] * 1e3 >= self.slow_request_ms
        ):
            if self.telemetry is not None:
                self.telemetry.increment("trace.slow_requests")
            breakdown = ", ".join(
                f"{span['name']}={span['duration_s'] * 1e3:.2f}ms"
                for span in event["spans"]
            )
            logger.warning(
                "slow request trace=%s kind=%s user=%s total=%.2fms spans=[%s]",
                event["trace_id"],
                event["kind"],
                event.get("user_id"),
                event["total_s"] * 1e3,
                breakdown or "none",
            )

    def events(self) -> list[dict[str, Any]]:
        """A copy of the retained finished events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop retained events (the JSONL sink is untouched)."""
        self._events.clear()
