"""Two-sample Kolmogorov–Smirnov test used in the feature screen (Figure 3).

The statistic is the maximum distance between the two empirical cumulative
distribution functions; the p-value uses the asymptotic Kolmogorov
distribution.  A from-scratch implementation is provided (and cross-checked
against :func:`scipy.stats.ks_2samp` in the test suite) because the test is a
core piece of the paper's feature-selection methodology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.utils.validation import check_array


@dataclass(frozen=True)
class KsResult:
    """Result of a two-sample KS test.

    Attributes
    ----------
    statistic:
        Maximum distance between the two empirical CDFs, in ``[0, 1]``.
    pvalue:
        Asymptotic p-value for the null hypothesis that both samples come
        from the same distribution.
    """

    statistic: float
    pvalue: float

    def rejects_null(self, alpha: float = 0.05) -> bool:
        """Whether the test rejects H0 (same distribution) at level *alpha*."""
        return self.pvalue < alpha


def _kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution, Q(x) = P(K > x)."""
    if x <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        total += (-1.0) ** (k - 1) * np.exp(-2.0 * (k * x) ** 2)
    return float(np.clip(2.0 * total, 0.0, 1.0))


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> KsResult:
    """Two-sample KS test of *sample_a* versus *sample_b*.

    Both samples must be one-dimensional and non-empty.
    """
    a = np.sort(check_array(sample_a, "sample_a", ndim=1))
    b = np.sort(check_array(sample_b, "sample_b", ndim=1))
    n_a, n_b = len(a), len(b)
    combined = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, combined, side="right") / n_a
    cdf_b = np.searchsorted(b, combined, side="right") / n_b
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    effective_n = np.sqrt(n_a * n_b / (n_a + n_b))
    # Asymptotic p-value with the standard small-sample correction.
    argument = (effective_n + 0.12 + 0.11 / effective_n) * statistic
    pvalue = _kolmogorov_sf(argument)
    return KsResult(statistic=statistic, pvalue=pvalue)


def pairwise_ks_pvalues(
    samples_by_group: Mapping[object, Sequence[float]]
) -> np.ndarray:
    """KS p-values for every unordered pair of groups.

    Parameters
    ----------
    samples_by_group:
        Mapping from group identifier (e.g. user id) to that group's sample
        of a single feature.

    Returns
    -------
    numpy.ndarray
        One p-value per unordered pair, in deterministic (sorted-key) order.
    """
    keys = sorted(samples_by_group.keys(), key=str)
    if len(keys) < 2:
        raise ValueError("need at least two groups for pairwise KS tests")
    pvalues = []
    for key_a, key_b in itertools.combinations(keys, 2):
        result = ks_two_sample(
            np.asarray(samples_by_group[key_a], dtype=float),
            np.asarray(samples_by_group[key_b], dtype=float),
        )
        pvalues.append(result.pvalue)
    return np.asarray(pvalues)
