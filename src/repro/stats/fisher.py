"""Fisher score for supervised feature (and sensor) selection.

Section V-B ranks sensors by their Fisher score: a feature is good when the
distance between class means is large relative to the within-class spread.
For feature *j* with classes :math:`c = 1..C`,

.. math::

    F(j) = \\frac{\\sum_c n_c (\\mu_{c,j} - \\mu_j)^2}
                 {\\sum_c n_c \\sigma_{c,j}^2}

where :math:`\\mu_j` is the overall mean, :math:`\\mu_{c,j}` and
:math:`\\sigma_{c,j}^2` the per-class mean and variance and :math:`n_c` the
class sizes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.validation import check_array, check_same_length


def fisher_score(values: np.ndarray, labels: Sequence[object]) -> float:
    """Fisher score of a single one-dimensional feature.

    Parameters
    ----------
    values:
        Feature values, shape ``(n_samples,)``.
    labels:
        Class label for every sample (e.g. the user id that produced it).

    Returns
    -------
    float
        The Fisher score; larger means more discriminative.  Returns 0.0 when
        the within-class variance is zero everywhere and the class means are
        identical, and ``inf`` when classes are perfectly separated with zero
        spread.
    """
    data = check_array(values, "values", ndim=1)
    labels = list(labels)
    check_same_length(data, labels, "values, labels")
    classes = sorted(set(labels), key=str)
    if len(classes) < 2:
        raise ValueError("fisher_score requires at least two classes")
    overall_mean = float(np.mean(data))
    between = 0.0
    within = 0.0
    label_array = np.asarray(labels, dtype=object)
    for cls in classes:
        mask = label_array == cls
        class_values = data[mask]
        n_c = len(class_values)
        between += n_c * (float(np.mean(class_values)) - overall_mean) ** 2
        within += n_c * float(np.var(class_values))
    if within == 0.0:
        return float("inf") if between > 0.0 else 0.0
    return float(between / within)


def fisher_scores(matrix: np.ndarray, labels: Sequence[object]) -> np.ndarray:
    """Fisher score of every column of a feature matrix."""
    data = check_array(matrix, "matrix", ndim=2)
    return np.array([fisher_score(data[:, j], labels) for j in range(data.shape[1])])
