"""Statistics substrate: Fisher scores, KS tests and correlation analysis."""

from repro.stats.fisher import fisher_score, fisher_scores
from repro.stats.ks import KsResult, ks_two_sample, pairwise_ks_pvalues
from repro.stats.correlation import (
    pearson_correlation,
    correlation_matrix,
    cross_correlation_matrix,
)
from repro.stats.descriptive import box_plot_summary, BoxPlotSummary

__all__ = [
    "fisher_score",
    "fisher_scores",
    "KsResult",
    "ks_two_sample",
    "pairwise_ks_pvalues",
    "pearson_correlation",
    "correlation_matrix",
    "cross_correlation_matrix",
    "box_plot_summary",
    "BoxPlotSummary",
]
