"""Pearson-correlation utilities for the feature-redundancy analysis.

Tables III and IV of the paper report (per-user averaged) Pearson correlation
coefficients between pairs of features, within one device and across the two
devices respectively.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.validation import check_array, check_same_length


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient between two one-dimensional samples.

    Returns 0.0 when either sample has zero variance (the coefficient is
    undefined there; zero is the conventional "no linear relation" fallback).
    """
    a = check_array(x, "x", ndim=1)
    b = check_array(y, "y", ndim=1)
    check_same_length(a, b, "x, y")
    std_a, std_b = float(np.std(a)), float(np.std(b))
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def correlation_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations between the columns of *matrix*."""
    data = check_array(matrix, "matrix", ndim=2)
    n_features = data.shape[1]
    result = np.eye(n_features)
    for i in range(n_features):
        for j in range(i + 1, n_features):
            value = pearson_correlation(data[:, i], data[:, j])
            result[i, j] = value
            result[j, i] = value
    return result


def cross_correlation_matrix(matrix_a: np.ndarray, matrix_b: np.ndarray) -> np.ndarray:
    """Correlations between every column of *matrix_a* and every column of *matrix_b*.

    The two matrices must have the same number of rows (aligned windows).
    Entry ``(i, j)`` is the correlation between column *i* of A and column *j*
    of B — the layout of Table IV (watch rows, phone columns when called with
    ``(watch, phone)``).
    """
    a = check_array(matrix_a, "matrix_a", ndim=2)
    b = check_array(matrix_b, "matrix_b", ndim=2)
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"matrices must have the same number of rows, got {a.shape[0]} and {b.shape[0]}"
        )
    result = np.zeros((a.shape[1], b.shape[1]))
    for i in range(a.shape[1]):
        for j in range(b.shape[1]):
            result[i, j] = pearson_correlation(a[:, i], b[:, j])
    return result


def averaged_correlation_matrices(
    matrices_by_group: Mapping[object, np.ndarray]
) -> np.ndarray:
    """Average per-group correlation matrices, as the paper averages over users."""
    keys = sorted(matrices_by_group.keys(), key=str)
    if not keys:
        raise ValueError("need at least one group")
    stacked = [correlation_matrix(matrices_by_group[key]) for key in keys]
    return np.mean(np.stack(stacked), axis=0)
