"""Descriptive statistics helpers (box-plot summaries for Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array


@dataclass(frozen=True)
class BoxPlotSummary:
    """The five-number summary drawn by a box plot.

    Attributes mirror the elements visible in Figure 3 of the paper: lower
    quartile, median, upper quartile plus the whisker extremes.
    """

    minimum: float
    lower_quartile: float
    median: float
    upper_quartile: float
    maximum: float

    def fraction_below(self, values: np.ndarray, threshold: float) -> float:
        """Fraction of *values* below *threshold* (e.g. the alpha line)."""
        data = np.asarray(values, dtype=float)
        if data.size == 0:
            return 0.0
        return float(np.mean(data < threshold))


def box_plot_summary(values: np.ndarray) -> BoxPlotSummary:
    """Compute the five-number summary of a one-dimensional sample."""
    data = check_array(values, "values", ndim=1)
    return BoxPlotSummary(
        minimum=float(np.min(data)),
        lower_quartile=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        upper_quartile=float(np.percentile(data, 75)),
        maximum=float(np.max(data)),
    )
