"""Experiment E-T1 — Table I: comparison with prior implicit-authentication work.

Table I of the paper is a literature comparison; its other rows are published
numbers, not experiments the authors ran.  The reproduction therefore (a)
re-states those published rows verbatim and (b) fills in the SmarterYou row
with the numbers *measured by this reproduction* (the Table VII combination +
context cell), so the bench prints the same table with our own bottom line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import EvaluationConfig, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset


@dataclass(frozen=True)
class RelatedWorkRow:
    """One row of Table I (values as reported by the cited paper)."""

    citation: str
    modality: str
    accuracy_percent: float | None
    far_percent: float | None
    frr_percent: float | None
    n_users: int


#: The literature rows of Table I, as printed in the paper ("n.a." -> None).
PAPER_RELATED_WORK: tuple[RelatedWorkRow, ...] = (
    RelatedWorkRow("Trojahn et al. 2013", "touchscreen", None, 11.0, 16.0, 18),
    RelatedWorkRow("Frank et al. 2013", "touchscreen", 96.0, None, None, 41),
    RelatedWorkRow("Li et al. 2013", "touchscreen", 95.7, None, None, 75),
    RelatedWorkRow("Feng et al. 2012", "touchscreen + acc + gyr", None, 4.66, 0.13, 40),
    RelatedWorkRow("Xu et al. 2014", "touchscreen", 90.0, None, None, 31),
    RelatedWorkRow("Zheng et al. 2014", "touchscreen + accelerometer", 96.35, None, None, 80),
    RelatedWorkRow("Conti et al. 2011", "accelerometer + orientation", None, 4.44, 9.33, 10),
    RelatedWorkRow("Kayacik et al. 2014", "acc + ori + mag + light", None, None, None, 4),
    RelatedWorkRow("Zhu et al. 2013", "acc + orientation + magnetometer", 75.0, None, None, 20),
    RelatedWorkRow("Nickel et al. 2012", "accelerometer", None, 3.97, 22.22, 20),
    RelatedWorkRow("Lee et al. 2015", "acc + orientation + magnetometer", 90.0, None, None, 4),
    RelatedWorkRow("Yang et al. 2015", "accelerometer", None, 15.0, 10.0, 200),
    RelatedWorkRow("Buthpitiya et al. 2011", "GPS", 86.6, None, None, 30),
)

#: The SmarterYou row as published (accuracy, FAR, FRR, users).
PAPER_SMARTERYOU_ROW = RelatedWorkRow(
    "SmarterYou (paper) 2017", "accelerometer + gyroscope", 98.1, 2.8, 0.9, 35
)


@dataclass
class RelatedWorkComparisonResult:
    """Table I with this reproduction's own SmarterYou row appended."""

    literature: tuple[RelatedWorkRow, ...]
    paper_row: RelatedWorkRow
    measured_accuracy_percent: float
    measured_far_percent: float
    measured_frr_percent: float
    n_users: int

    def measured_beats_literature_accuracy(self) -> bool:
        """Whether the measured accuracy exceeds every literature accuracy."""
        reported = [row.accuracy_percent for row in self.literature if row.accuracy_percent]
        return all(self.measured_accuracy_percent > value for value in reported)

    def to_text(self) -> str:
        """Render the full comparison table."""

        def cell(value: float | None) -> object:
            return "n.a." if value is None else value

        rows = [
            (
                row.citation,
                row.modality,
                cell(row.accuracy_percent),
                cell(row.far_percent),
                cell(row.frr_percent),
                row.n_users,
            )
            for row in self.literature
        ]
        rows.append(
            (
                self.paper_row.citation,
                self.paper_row.modality,
                cell(self.paper_row.accuracy_percent),
                cell(self.paper_row.far_percent),
                cell(self.paper_row.frr_percent),
                self.paper_row.n_users,
            )
        )
        rows.append(
            (
                "SmarterYou (this reproduction)",
                "accelerometer + gyroscope",
                self.measured_accuracy_percent,
                self.measured_far_percent,
                self.measured_frr_percent,
                self.n_users,
            )
        )
        return format_table(
            ["work", "modality", "accuracy %", "FAR %", "FRR %", "# users"],
            rows,
            title="Table I: comparison with prior implicit authentication",
            float_format="{:.1f}",
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> RelatedWorkComparisonResult:
    """Measure this reproduction's SmarterYou row and assemble Table I."""
    dataset = get_free_form_dataset(scale)
    config = EvaluationConfig(window_seconds=scale.window_seconds, use_context=True)
    result = evaluate_configuration(dataset, config, seed=scale.seed)
    summary = result.summary()
    return RelatedWorkComparisonResult(
        literature=PAPER_RELATED_WORK,
        paper_row=PAPER_SMARTERYOU_ROW,
        measured_accuracy_percent=summary["Accuracy%"],
        measured_far_percent=summary["FAR%"],
        measured_frr_percent=summary["FRR%"],
        n_users=scale.n_users,
    )
