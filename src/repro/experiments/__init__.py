"""Experiment harness: one module per table and figure of the paper.

Every module exposes a ``run(scale)`` function returning a result dataclass
with a ``to_text()`` rendering that prints the same rows/series the paper
reports, plus module-level constants holding the paper's published numbers so
the benchmark output can show paper-vs-measured side by side.
"""

from repro.experiments.common import ExperimentScale, SMALL_SCALE, DEFAULT_SCALE, PAPER_SCALE

__all__ = [
    "ExperimentScale",
    "SMALL_SCALE",
    "DEFAULT_SCALE",
    "PAPER_SCALE",
]
