"""Experiment E-T2 — Table II: Fisher scores of candidate sensors.

The paper computes a Fisher score for every sensor axis on both devices and
selects the accelerometer and gyroscope because their scores dominate those
of the magnetometer, orientation and light sensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_all_sensor_dataset
from repro.features.selection import fisher_scores_by_sensor
from repro.sensors.types import DeviceType

#: The paper's reported Fisher scores (Table II).
PAPER_FISHER_SCORES = {
    DeviceType.SMARTPHONE: {
        "Acc(x)": 3.13, "Acc(y)": 0.8, "Acc(z)": 0.38,
        "Mag(x)": 0.005, "Mag(y)": 0.001, "Mag(z)": 0.0025,
        "Gyr(x)": 0.57, "Gyr(y)": 1.12, "Gyr(z)": 4.074,
        "Ori(x)": 0.0049, "Ori(y)": 0.002, "Ori(z)": 0.0033,
        "Light": 0.0091,
    },
    DeviceType.SMARTWATCH: {
        "Acc(x)": 3.62, "Acc(y)": 0.59, "Acc(z)": 0.89,
        "Mag(x)": 0.003, "Mag(y)": 0.0049, "Mag(z)": 0.0002,
        "Gyr(x)": 0.24, "Gyr(y)": 1.09, "Gyr(z)": 0.59,
        "Ori(x)": 0.0027, "Ori(y)": 0.0043, "Ori(z)": 0.0001,
        "Light": 0.0428,
    },
}

#: The sensors the paper keeps based on this table.
SELECTED_SENSOR_PREFIXES = ("Acc", "Gyr")


@dataclass
class FisherScoreResult:
    """Measured Fisher scores per sensor axis and device."""

    scores: dict[DeviceType, dict[str, float]]

    def motion_vs_environment_ratio(self, device: DeviceType) -> float:
        """Mean motion-sensor score divided by mean environment-sensor score.

        The paper's qualitative claim is that this ratio is large (motion
        sensors carry identity; environment sensors do not).
        """
        device_scores = self.scores[device]
        motion = [
            value
            for key, value in device_scores.items()
            if key.startswith(SELECTED_SENSOR_PREFIXES)
        ]
        environment = [
            value
            for key, value in device_scores.items()
            if not key.startswith(SELECTED_SENSOR_PREFIXES)
        ]
        mean_environment = max(sum(environment) / max(len(environment), 1), 1e-12)
        return (sum(motion) / max(len(motion), 1)) / mean_environment

    def to_text(self) -> str:
        """Render measured vs. paper Fisher scores for both devices."""
        keys = list(PAPER_FISHER_SCORES[DeviceType.SMARTPHONE].keys())
        rows = []
        for key in keys:
            rows.append(
                (
                    key,
                    float(self.scores[DeviceType.SMARTPHONE].get(key, float("nan"))),
                    PAPER_FISHER_SCORES[DeviceType.SMARTPHONE][key],
                    float(self.scores[DeviceType.SMARTWATCH].get(key, float("nan"))),
                    PAPER_FISHER_SCORES[DeviceType.SMARTWATCH][key],
                )
            )
        return format_table(
            ["sensor", "phone (measured)", "phone (paper)", "watch (measured)", "watch (paper)"],
            rows,
            title="Table II: Fisher scores of candidate sensors",
            float_format="{:.4f}",
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> FisherScoreResult:
    """Compute per-axis Fisher scores from an all-sensor synthetic dataset.

    Scores are computed separately within each fine usage context and then
    averaged, so they reflect how well a sensor axis separates *users* rather
    than how different walking is from sitting.
    """
    dataset = get_all_sensor_dataset(scale)
    scores: dict[DeviceType, dict[str, float]] = {}
    for device in (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH):
        recordings = dataset.recordings(device)
        contexts = sorted({recording.context for recording in recordings}, key=lambda c: c.value)
        per_context: list[dict[str, float]] = []
        for context in contexts:
            subset = [rec for rec in recordings if rec.context is context]
            if len({rec.user_id for rec in subset}) >= 2:
                per_context.append(fisher_scores_by_sensor(subset))
        if not per_context:
            per_context = [fisher_scores_by_sensor(recordings)]
        keys = sorted({key for scores_map in per_context for key in scores_map})
        scores[device] = {
            key: float(
                sum(scores_map.get(key, 0.0) for scores_map in per_context) / len(per_context)
            )
            for key in keys
        }
    return FisherScoreResult(scores=scores)
