"""Experiment E-F4 — Figure 4: FRR and FAR versus window size.

The paper sweeps the window length from 1 s to 16 s, per context and per
device set (phone, watch, combination), and finds that both error rates
stabilise once the window is at least 6 s, with the combination always best.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import EvaluationConfig, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.sensors.types import CoarseContext, DeviceType

#: Window size (seconds) at which the paper says the error rates stabilise.
PAPER_STABLE_WINDOW_SECONDS = 6.0

#: Device sets plotted in Figure 4.
DEVICE_SETS = {
    "smartphone": (DeviceType.SMARTPHONE,),
    "smartwatch": (DeviceType.SMARTWATCH,),
    "combination": (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
}


@dataclass(frozen=True)
class WindowSizePoint:
    """One point of the Figure 4 curves."""

    window_seconds: float
    device_set: str
    context: CoarseContext
    frr: float
    far: float


@dataclass
class WindowSizeSweepResult:
    """All points of the Figure 4 sweep."""

    points: list[WindowSizePoint]

    def series(self, device_set: str, context: CoarseContext) -> list[WindowSizePoint]:
        """One curve: all window sizes for a device set under one context."""
        selected = [
            point
            for point in self.points
            if point.device_set == device_set and point.context == context
        ]
        return sorted(selected, key=lambda point: point.window_seconds)

    def error_at(self, device_set: str, context: CoarseContext, window_seconds: float) -> tuple[float, float]:
        """(FRR, FAR) of one point."""
        for point in self.series(device_set, context):
            if point.window_seconds == window_seconds:
                return point.frr, point.far
        raise KeyError(f"no point at window={window_seconds}s for {device_set}/{context.value}")

    def to_text(self) -> str:
        """Render the full sweep as a table (one row per point)."""
        rows = [
            (
                point.context.value,
                point.device_set,
                point.window_seconds,
                100.0 * point.frr,
                100.0 * point.far,
            )
            for point in sorted(
                self.points, key=lambda p: (p.context.value, p.device_set, p.window_seconds)
            )
        ]
        return format_table(
            ["context", "devices", "window (s)", "FRR %", "FAR %"],
            rows,
            title=(
                "Figure 4: FRR/FAR vs window size "
                f"(paper: stable beyond {PAPER_STABLE_WINDOW_SECONDS:.0f}s, combination best)"
            ),
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> WindowSizeSweepResult:
    """Sweep window sizes for every device set and context."""
    dataset = get_free_form_dataset(scale)
    points: list[WindowSizePoint] = []
    for window_seconds in scale.window_sizes:
        for device_name, devices in DEVICE_SETS.items():
            config = EvaluationConfig(
                devices=devices, window_seconds=window_seconds, use_context=True
            )
            result = evaluate_configuration(dataset, config, seed=scale.seed)
            for context in CoarseContext:
                try:
                    metrics = result.context_metrics(context)
                except KeyError:
                    continue
                points.append(
                    WindowSizePoint(
                        window_seconds=window_seconds,
                        device_set=device_name,
                        context=context,
                        frr=metrics.frr,
                        far=metrics.far,
                    )
                )
    return WindowSizeSweepResult(points=points)
