"""Run every paper experiment in sequence and collect the rendered outputs.

``python -m repro.experiments.runner`` prints every table and figure
reproduction at the default scale, which is the quickest way to regenerate an
EXPERIMENTS.md-style report.

Experiment execution is instrumented through the same
:class:`~repro.service.telemetry.TelemetryHub` the fleet serving path uses,
so paper artefacts report identical counters and latency statistics
(count / total / mean / p50 / p95 / p99) to a fleet run — one observability
surface for both halves of the system.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Callable

from repro.experiments import common
from repro.experiments import (
    fig2_demographics,
    fig3_ks,
    fig4_window_size,
    fig5_data_size,
    fig6_masquerade,
    fig7_retraining,
    overhead,
    table1_related_work,
    table2_fisher,
    table3_feature_corr,
    table4_cross_device_corr,
    table5_context_confusion,
    table6_classifiers,
    table7_context_devices,
    table8_battery,
)
from repro.service.telemetry import TelemetryHub

#: Experiment registry: id -> (description, run callable).
EXPERIMENTS: dict[str, tuple[str, Callable[[common.ExperimentScale], object]]] = {
    "table1": ("Table I: comparison with prior work", table1_related_work.run),
    "fig2": ("Figure 2: participant demographics", fig2_demographics.run),
    "table2": ("Table II: Fisher scores of sensors", table2_fisher.run),
    "fig3": ("Figure 3: KS feature screen", fig3_ks.run),
    "table3": ("Table III: feature-feature correlations", table3_feature_corr.run),
    "table4": ("Table IV: phone-watch correlations", table4_cross_device_corr.run),
    "table5": ("Table V: context-detection confusion matrix", table5_context_confusion.run),
    "table6": ("Table VI: classifier comparison", table6_classifiers.run),
    "fig4": ("Figure 4: FRR/FAR vs window size", fig4_window_size.run),
    "fig5": ("Figure 5: accuracy vs data size", fig5_data_size.run),
    "table7": ("Table VII: context/device ablation", table7_context_devices.run),
    "fig6": ("Figure 6: masquerading attacks", fig6_masquerade.run),
    "fig7": ("Figure 7: drift and retraining", fig7_retraining.run),
    "table8": ("Table VIII: battery consumption", table8_battery.run),
    "overhead": ("Section V-H: system overhead", overhead.run),
}


@dataclass
class ExperimentOutcome:
    """One executed experiment: its rendered text and wall-clock time."""

    experiment_id: str
    description: str
    text: str
    elapsed_s: float


def run_experiment(
    experiment_id: str,
    scale: common.ExperimentScale,
    telemetry: TelemetryHub | None = None,
) -> ExperimentOutcome:
    """Run a single experiment by id and capture its rendered output.

    Timing and success/failure counting go through *telemetry* (a private
    hub when omitted), under the same metric conventions as the fleet
    gateway: a latency recorder per operation, monotonic counters for
    outcomes.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    description, runner = EXPERIMENTS[experiment_id]
    hub = telemetry if telemetry is not None else TelemetryHub()
    start = time.perf_counter()
    try:
        with hub.timer(f"experiment.{experiment_id}"):
            result = runner(scale)
    except Exception:
        hub.increment("experiments.failed")
        raise
    hub.increment("experiments.completed")
    elapsed = time.perf_counter() - start
    return ExperimentOutcome(
        experiment_id=experiment_id,
        description=description,
        text=result.to_text(),  # type: ignore[attr-defined]
        elapsed_s=elapsed,
    )


def run_all(
    scale: common.ExperimentScale = common.DEFAULT_SCALE,
    experiment_ids: list[str] | None = None,
    telemetry: TelemetryHub | None = None,
) -> list[ExperimentOutcome]:
    """Run every (or the selected) experiment and return their outcomes."""
    selected = experiment_ids or list(EXPERIMENTS)
    return [
        run_experiment(experiment_id, scale, telemetry=telemetry)
        for experiment_id in selected
    ]


def render_telemetry(telemetry: TelemetryHub) -> str:
    """Render a run's telemetry snapshot in the fleet report's format."""
    snapshot = telemetry.snapshot()
    lines = ["telemetry"]
    for name, value in snapshot["counters"].items():
        lines.append(f"  {name:<28}: {value}")
    for name, stats in snapshot["latencies"].items():
        lines.append(
            f"  {name:<28}: count={stats['count']} total={stats['total_s']:.2f}s "
            f"mean={stats['mean_s']:.2f}s p50={stats['p50_s']:.2f}s "
            f"p95={stats['p95_s']:.2f}s"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Run the SmarterYou paper experiments")
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "default", "paper"),
        default="default",
        help="study scale: small (tests), default (benchmarks) or paper (full size)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available experiment ids and exit",
    )
    args = parser.parse_args(argv)
    if args.list:
        for experiment_id, (description, _) in EXPERIMENTS.items():
            print(f"{experiment_id:<10} {description}")
        return 0
    scale = {
        "small": common.SMALL_SCALE,
        "default": common.DEFAULT_SCALE,
        "paper": common.PAPER_SCALE,
    }[args.scale]
    telemetry = TelemetryHub()
    outcomes = run_all(scale, args.experiments or None, telemetry=telemetry)
    for outcome in outcomes:
        print("=" * 78)
        print(f"{outcome.experiment_id}: {outcome.description} ({outcome.elapsed_s:.1f}s)")
        print("=" * 78)
        print(outcome.text)
        print()
    print("=" * 78)
    print(render_telemetry(telemetry))
    return 0


if __name__ == "__main__":
    sys.exit(main())
