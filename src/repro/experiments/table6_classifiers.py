"""Experiment E-T6 — Table VI: authentication performance by classifier.

The paper compares KRR, SVM, linear regression and naive Bayes on the full
configuration (both devices, per-context models, 6 s windows) and finds KRR
best, SVM close behind, and the two simple baselines far worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.evaluation import EvaluationConfig, EvaluationResult, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.ml.base import BaseClassifier
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.linear import LinearRegressionClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.svm import LinearSVMClassifier

#: The paper's reported numbers (FRR%, FAR%, Accuracy%).
PAPER_TABLE_VI = {
    "KRR": (0.9, 2.8, 98.1),
    "SVM": (2.7, 2.5, 97.4),
    "Linear Regression": (12.7, 14.6, 86.3),
    "Naive Bayes": (10.8, 13.9, 87.6),
}

#: Classifier factories under test, in the paper's row order.
CLASSIFIER_FACTORIES: dict[str, Callable[[], BaseClassifier]] = {
    "KRR": lambda: KernelRidgeClassifier(ridge=1.0, kernel="linear"),
    "SVM": lambda: LinearSVMClassifier(C=1.0, n_iterations=400),
    "Linear Regression": lambda: LinearRegressionClassifier(),
    "Naive Bayes": lambda: GaussianNaiveBayes(),
}


@dataclass
class ClassifierComparisonResult:
    """Measured FRR / FAR / accuracy per classifier."""

    results: dict[str, EvaluationResult]

    def accuracy(self, name: str) -> float:
        """Accuracy of one classifier (fraction)."""
        return self.results[name].accuracy

    def ranking(self) -> list[str]:
        """Classifiers sorted by decreasing measured accuracy."""
        return sorted(self.results, key=lambda name: -self.results[name].accuracy)

    def to_text(self) -> str:
        """Render measured vs. paper rows."""
        rows = []
        for name, result in self.results.items():
            paper_frr, paper_far, paper_acc = PAPER_TABLE_VI[name]
            summary = result.summary()
            rows.append(
                (
                    name,
                    summary["FRR%"],
                    paper_frr,
                    summary["FAR%"],
                    paper_far,
                    summary["Accuracy%"],
                    paper_acc,
                )
            )
        return format_table(
            [
                "method",
                "FRR% (meas)",
                "FRR% (paper)",
                "FAR% (meas)",
                "FAR% (paper)",
                "Acc% (meas)",
                "Acc% (paper)",
            ],
            rows,
            title="Table VI: authentication performance by classifier",
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ClassifierComparisonResult:
    """Evaluate every classifier with the paper's protocol."""
    dataset = get_free_form_dataset(scale)
    results: dict[str, EvaluationResult] = {}
    for name, factory in CLASSIFIER_FACTORIES.items():
        config = EvaluationConfig(
            window_seconds=scale.window_seconds,
            use_context=True,
            classifier_factory=factory,
        )
        results[name] = evaluate_configuration(dataset, config, seed=scale.seed)
    return ClassifierComparisonResult(results=results)
