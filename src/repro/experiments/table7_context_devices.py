"""Experiment E-T7 — Table VII: the effect of contexts and of the smartwatch.

The paper's headline ablation: accuracy with / without per-context models and
with the phone alone versus phone + watch.  Expected ordering (and the
paper's numbers): no-context phone (83.6 %) < no-context combination (91.7 %)
< context phone (93.3 %) < context combination (98.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import EvaluationConfig, EvaluationResult, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.sensors.types import DeviceType

#: The paper's reported rows: (context?, devices) -> (FRR%, FAR%, Accuracy%).
PAPER_TABLE_VII = {
    (False, "smartphone"): (15.4, 17.4, 83.6),
    (False, "combination"): (7.3, 9.3, 91.7),
    (True, "smartphone"): (5.1, 8.3, 93.3),
    (True, "combination"): (0.9, 2.8, 98.1),
}

#: Device sets under test.
DEVICE_SETS = {
    "smartphone": (DeviceType.SMARTPHONE,),
    "combination": (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
}


@dataclass
class ContextDeviceAblationResult:
    """Measured metrics for every (context, device-set) cell."""

    results: dict[tuple[bool, str], EvaluationResult]

    def accuracy(self, use_context: bool, device_set: str) -> float:
        """Accuracy (fraction) of one ablation cell."""
        return self.results[(use_context, device_set)].accuracy

    def ordering_holds(self) -> bool:
        """Whether the paper's monotone ordering of the four cells holds."""
        return (
            self.accuracy(False, "smartphone")
            <= self.accuracy(False, "combination")
            and self.accuracy(False, "combination") <= self.accuracy(True, "combination")
            and self.accuracy(True, "smartphone") <= self.accuracy(True, "combination")
        )

    def to_text(self) -> str:
        """Render measured vs. paper rows."""
        rows = []
        for (use_context, device_set), result in self.results.items():
            paper_frr, paper_far, paper_acc = PAPER_TABLE_VII[(use_context, device_set)]
            summary = result.summary()
            rows.append(
                (
                    "w/ context" if use_context else "w/o context",
                    device_set,
                    summary["FRR%"],
                    paper_frr,
                    summary["FAR%"],
                    paper_far,
                    summary["Accuracy%"],
                    paper_acc,
                )
            )
        return format_table(
            [
                "context",
                "device",
                "FRR% (meas)",
                "FRR% (paper)",
                "FAR% (meas)",
                "FAR% (paper)",
                "Acc% (meas)",
                "Acc% (paper)",
            ],
            rows,
            title="Table VII: contexts and devices ablation",
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ContextDeviceAblationResult:
    """Evaluate the four (context, device-set) cells."""
    dataset = get_free_form_dataset(scale)
    results: dict[tuple[bool, str], EvaluationResult] = {}
    for use_context in (False, True):
        for device_name, devices in DEVICE_SETS.items():
            config = EvaluationConfig(
                devices=devices,
                window_seconds=scale.window_seconds,
                use_context=use_context,
            )
            results[(use_context, device_name)] = evaluate_configuration(
                dataset, config, seed=scale.seed
            )
    return ContextDeviceAblationResult(results=results)
