"""Experiment E-F5 — Figure 5: accuracy versus training-data size.

The paper varies the number of training measurements from 100 to 1200 and
finds accuracy rising steeply, peaking around 800, and declining slightly
afterwards; more devices always help.  At reproduction scale the data-size
axis is smaller (see ``ExperimentScale.data_sizes``) but the rising,
device-ordered shape is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import EvaluationConfig, evaluate_configuration
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.sensors.types import CoarseContext, DeviceType

#: The data size the paper finds optimal.
PAPER_OPTIMAL_DATA_SIZE = 800

#: Device sets plotted in Figure 5.
DEVICE_SETS = {
    "smartphone": (DeviceType.SMARTPHONE,),
    "smartwatch": (DeviceType.SMARTWATCH,),
    "combination": (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
}


@dataclass(frozen=True)
class DataSizePoint:
    """One point of the Figure 5 curves."""

    data_size: int
    device_set: str
    context: CoarseContext
    accuracy: float


@dataclass
class DataSizeSweepResult:
    """All points of the Figure 5 sweep."""

    points: list[DataSizePoint]

    def series(self, device_set: str, context: CoarseContext) -> list[DataSizePoint]:
        """One curve: accuracy over data sizes for a device set and context."""
        selected = [
            point
            for point in self.points
            if point.device_set == device_set and point.context == context
        ]
        return sorted(selected, key=lambda point: point.data_size)

    def accuracy_at(self, device_set: str, context: CoarseContext, data_size: int) -> float:
        """Accuracy of one point."""
        for point in self.series(device_set, context):
            if point.data_size == data_size:
                return point.accuracy
        raise KeyError(f"no point at data size {data_size} for {device_set}/{context.value}")

    def to_text(self) -> str:
        """Render the sweep as a table."""
        rows = [
            (
                point.context.value,
                point.device_set,
                point.data_size,
                100.0 * point.accuracy,
            )
            for point in sorted(
                self.points, key=lambda p: (p.context.value, p.device_set, p.data_size)
            )
        ]
        return format_table(
            ["context", "devices", "data size", "accuracy %"],
            rows,
            title=(
                "Figure 5: accuracy vs training-data size "
                f"(paper: peak near {PAPER_OPTIMAL_DATA_SIZE} windows, combination best)"
            ),
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> DataSizeSweepResult:
    """Sweep training-set sizes for every device set and context."""
    dataset = get_free_form_dataset(scale)
    points: list[DataSizePoint] = []
    for data_size in scale.data_sizes:
        for device_name, devices in DEVICE_SETS.items():
            config = EvaluationConfig(
                devices=devices,
                window_seconds=scale.window_seconds,
                use_context=True,
                max_windows_per_user=data_size,
            )
            result = evaluate_configuration(dataset, config, seed=scale.seed)
            for context in CoarseContext:
                try:
                    metrics = result.context_metrics(context)
                except KeyError:
                    continue
                points.append(
                    DataSizePoint(
                        data_size=data_size,
                        device_set=device_name,
                        context=context,
                        accuracy=metrics.accuracy,
                    )
                )
    return DataSizeSweepResult(points=points)
