"""Experiment E-F3 — Figure 3: KS-test screening of candidate features.

For every candidate feature (including the later-dropped ``range`` and
``peak2_f``), the paper runs a two-sample KS test between every pair of users
and draws the p-values as a box plot; features whose p-values mostly sit
above the 0.05 line are dropped.  The reproduction reports, per feature and
device, the box-plot summary and the fraction of significant pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.features.selection import KsScreenResult, ks_feature_screen
from repro.features.vector import FeatureVectorSpec
from repro.sensors.types import DeviceType, SELECTED_SENSORS
from repro.stats.descriptive import box_plot_summary

#: Features the paper drops after this screen.
PAPER_DROPPED_FEATURES = ("peak2_f",)

#: Significance level drawn as the red line in Figure 3.
ALPHA = 0.05


def _candidate_spec(device: DeviceType) -> FeatureVectorSpec:
    """All nine candidate features for one device."""
    return FeatureVectorSpec(
        sensors=SELECTED_SENSORS,
        time_features=("mean", "var", "max", "min", "range"),
        frequency_features=("peak", "peak_f", "peak2", "peak2_f"),
        devices=(device,),
    )


@dataclass
class KsScreenExperimentResult:
    """Per-device KS screening outcome."""

    screens: dict[DeviceType, dict[str, KsScreenResult]]

    def dropped_features(self, device: DeviceType, min_fraction: float = 0.5) -> list[str]:
        """Base feature names (without device/sensor prefix) that fail the screen.

        A base feature is dropped only when it fails for every sensor it
        appears in, mirroring the paper's decision to drop ``peak2_f`` for
        both the accelerometer and gyroscope.
        """
        failures: dict[str, list[bool]] = {}
        for name, result in self.screens[device].items():
            base = name.split(".")[-1]
            failures.setdefault(base, []).append(result.fraction_significant < min_fraction)
        return sorted(base for base, flags in failures.items() if all(flags))

    def to_text(self) -> str:
        """Render the box-plot summaries for both devices."""
        blocks = []
        for device, screen in self.screens.items():
            rows = []
            for name, result in screen.items():
                if len(result.pvalues) == 0:
                    continue
                summary = box_plot_summary(result.pvalues)
                rows.append(
                    (
                        name,
                        summary.lower_quartile,
                        summary.median,
                        summary.upper_quartile,
                        result.fraction_significant,
                        "keep" if result.keep else "drop",
                    )
                )
            blocks.append(
                format_table(
                    ["feature", "Q1(p)", "median(p)", "Q3(p)", "frac p<0.05", "verdict"],
                    rows,
                    title=f"Figure 3 ({device.value}): KS screen (paper drops {PAPER_DROPPED_FEATURES})",
                    float_format="{:.4f}",
                )
            )
        return "\n\n".join(blocks)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> KsScreenExperimentResult:
    """Run the KS feature screen on both devices."""
    dataset = get_free_form_dataset(scale)
    screens: dict[DeviceType, dict[str, KsScreenResult]] = {}
    for device in (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH):
        matrix = dataset.device_matrix(
            device, scale.window_seconds, spec=_candidate_spec(device)
        )
        screens[device] = ks_feature_screen(matrix, alpha=ALPHA)
    return KsScreenExperimentResult(screens=screens)
