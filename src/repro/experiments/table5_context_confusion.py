"""Experiment E-T5 — Table V: context-detection confusion matrix.

The paper trains a user-agnostic random forest on lab data labelled with the
two coarse contexts and reports > 99 % accuracy.  The reproduction follows
the same protocol with leave-one-user-out evaluation: the detector scoring a
user's windows was trained only on other users' data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.context import ContextDetector
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_lab_dataset
from repro.features.vector import FeatureVectorSpec
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.sensors.types import CoarseContext, DeviceType, SELECTED_SENSORS

#: The paper's reported confusion matrix (row-normalised percentages).
PAPER_CONFUSION = {
    ("stationary", "stationary"): 99.1,
    ("stationary", "moving"): 0.9,
    ("moving", "stationary"): 0.6,
    ("moving", "moving"): 99.4,
}


@dataclass
class ContextConfusionResult:
    """Leave-one-user-out context-detection evaluation."""

    accuracy: float
    confusion_percent: np.ndarray
    labels: list[str]

    def cell(self, true_context: str, predicted_context: str) -> float:
        """One confusion-matrix cell, in percent."""
        i = self.labels.index(true_context)
        j = self.labels.index(predicted_context)
        return float(self.confusion_percent[i, j])

    def to_text(self) -> str:
        """Render measured vs. paper confusion matrices."""
        rows = []
        for true_label in self.labels:
            for predicted in self.labels:
                rows.append(
                    (
                        true_label,
                        predicted,
                        self.cell(true_label, predicted),
                        PAPER_CONFUSION[(true_label, predicted)],
                    )
                )
        return format_table(
            ["true context", "predicted", "measured %", "paper %"],
            rows,
            title=f"Table V: context detection (overall accuracy {100.0 * self.accuracy:.1f}%)",
        )


def run(scale: ExperimentScale = DEFAULT_SCALE) -> ContextConfusionResult:
    """Leave-one-user-out evaluation of the user-agnostic context detector."""
    dataset = get_lab_dataset(scale)
    spec = FeatureVectorSpec(sensors=SELECTED_SENSORS, devices=(DeviceType.SMARTPHONE,))
    matrix = dataset.device_matrix(DeviceType.SMARTPHONE, scale.window_seconds, spec=spec)
    users = sorted(set(matrix.user_ids))
    if len(users) < 2:
        raise ValueError("need at least two users for leave-one-user-out evaluation")
    user_array = np.asarray(matrix.user_ids, dtype=object)
    all_true: list[str] = []
    all_pred: list[str] = []
    for held_out in users:
        detector = ContextDetector(spec=spec)
        detector.fit(matrix, exclude_user=held_out)
        test_mask = user_array == held_out
        predictions = detector.detect(matrix.values[test_mask])
        all_pred.extend(context.value for context in predictions)
        all_true.extend(np.asarray(matrix.contexts, dtype=object)[test_mask])
    labels = [context.value for context in CoarseContext]
    counts, _ = confusion_matrix(all_true, all_pred, labels=labels)
    row_sums = counts.sum(axis=1, keepdims=True).astype(float)
    row_sums[row_sums == 0.0] = 1.0
    return ContextConfusionResult(
        accuracy=accuracy_score(all_true, all_pred),
        confusion_percent=100.0 * counts / row_sums,
        labels=labels,
    )
