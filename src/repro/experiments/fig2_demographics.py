"""Experiment E-F2 — Figure 2: demographics of the study participants."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.population import AgeBand, Gender
from repro.experiments.common import ExperimentScale, DEFAULT_SCALE, format_table, get_population

#: The paper's reported counts (16 female / 19 male; 12, 9, 5, 5, 4 by age).
PAPER_GENDER_COUNTS = {Gender.FEMALE: 16, Gender.MALE: 19}
PAPER_AGE_COUNTS = {
    AgeBand.A20_25: 12,
    AgeBand.A25_30: 9,
    AgeBand.A30_35: 5,
    AgeBand.A35_40: 5,
    AgeBand.A40_PLUS: 4,
}


@dataclass
class DemographicsResult:
    """Measured demographic histograms of the synthetic population."""

    n_users: int
    gender_counts: dict[Gender, int]
    age_counts: dict[AgeBand, int]

    def to_text(self) -> str:
        """Render both histograms side by side with the paper's counts."""
        gender_rows = [
            (
                gender.value,
                self.gender_counts.get(gender, 0),
                PAPER_GENDER_COUNTS[gender],
            )
            for gender in Gender
        ]
        age_rows = [
            (band.value, self.age_counts.get(band, 0), PAPER_AGE_COUNTS[band])
            for band in AgeBand
        ]
        gender_table = format_table(
            ["gender", "measured", "paper"], gender_rows, title="Figure 2 (a): gender"
        )
        age_table = format_table(
            ["age band", "measured", "paper"], age_rows, title="Figure 2 (b): age"
        )
        return f"{gender_table}\n\n{age_table}"


def run(scale: ExperimentScale = DEFAULT_SCALE) -> DemographicsResult:
    """Build the population at *scale* and report its demographics."""
    population = get_population(scale.n_users, scale.seed)
    return DemographicsResult(
        n_users=len(population),
        gender_counts=population.gender_histogram(),
        age_counts=population.age_histogram(),
    )
