"""Experiment E-OH — Section V-H: computational complexity and system overhead.

Combines (a) the analytic cost model calibrated to a phone-class core and
(b) actual wall-clock measurements of the from-scratch KRR on the paper's
problem size (720 training windows, 28 features), demonstrating the primal
(Eq. 7) versus dual (Eq. 6) complexity gap that Section V-H1 proves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.devices.cpu import ComputeCostModel, OverheadReport
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table
from repro.ml.kernel_ridge import KernelRidgeClassifier

#: The paper's reported overheads.
PAPER_TRAINING_TIME_S = 0.065
PAPER_TESTING_TIME_MS = 18.0
PAPER_TOTAL_DECISION_MS = 21.0
PAPER_CPU_PERCENT = 5.0
PAPER_MEMORY_MB = 3.0


@dataclass
class OverheadResult:
    """Model-predicted and locally measured overhead numbers."""

    predicted: OverheadReport
    measured_primal_fit_s: float
    measured_dual_fit_s: float
    measured_predict_ms: float
    n_samples: int
    n_features: int

    @property
    def primal_speedup(self) -> float:
        """Measured dual-fit time divided by primal-fit time."""
        if self.measured_primal_fit_s == 0.0:
            return float("inf")
        return self.measured_dual_fit_s / self.measured_primal_fit_s

    def to_text(self) -> str:
        """Render predicted / measured / paper numbers side by side."""
        rows = [
            ("training time (s)", self.predicted.training_time_s, self.measured_primal_fit_s, PAPER_TRAINING_TIME_S),
            ("testing time (ms)", self.predicted.testing_time_ms, self.measured_predict_ms, PAPER_TESTING_TIME_MS),
            (
                "context + auth decision (ms)",
                self.predicted.total_decision_time_ms,
                self.measured_predict_ms + self.predicted.context_detection_time_ms,
                PAPER_TOTAL_DECISION_MS,
            ),
            ("CPU utilisation (%)", self.predicted.cpu_utilization_percent, float("nan"), PAPER_CPU_PERCENT),
            ("memory (MB)", self.predicted.memory_mb, float("nan"), PAPER_MEMORY_MB),
        ]
        table = format_table(
            ["quantity", "cost model", "measured here", "paper"],
            rows,
            title=f"Section V-H overhead (N={self.n_samples}, M={self.n_features})",
            float_format="{:.3f}",
        )
        speedup = (
            f"Primal (Eq. 7) vs dual (Eq. 6) fit: {self.measured_primal_fit_s * 1e3:.1f} ms vs "
            f"{self.measured_dual_fit_s * 1e3:.1f} ms ({self.primal_speedup:.1f}x faster)"
        )
        return f"{table}\n{speedup}"


def run(
    scale: ExperimentScale = DEFAULT_SCALE, n_samples: int = 720, n_features: int = 28
) -> OverheadResult:
    """Predict overheads with the cost model and time the real KRR solvers."""
    model = ComputeCostModel()
    predicted = model.report(n_samples=n_samples, n_features=n_features)

    rng = np.random.default_rng(scale.seed)
    X = rng.normal(size=(n_samples, n_features))
    y = np.array(["legitimate"] * (n_samples // 2) + ["other"] * (n_samples - n_samples // 2))

    start = time.perf_counter()
    primal = KernelRidgeClassifier(solver="primal").fit(X, y)
    primal_fit = time.perf_counter() - start

    start = time.perf_counter()
    KernelRidgeClassifier(solver="dual").fit(X, y)
    dual_fit = time.perf_counter() - start

    test_rows = X[:10]
    start = time.perf_counter()
    for row in test_rows:
        primal.predict(row[np.newaxis, :])
    predict_ms = (time.perf_counter() - start) / len(test_rows) * 1e3

    return OverheadResult(
        predicted=predicted,
        measured_primal_fit_s=primal_fit,
        measured_dual_fit_s=dual_fit,
        measured_predict_ms=predict_ms,
        n_samples=n_samples,
        n_features=n_features,
    )
