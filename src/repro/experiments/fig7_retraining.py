"""Experiment E-F7 — Figure 7: confidence score under drift and retraining.

The paper tracks the confidence score of a user's windows over twelve days:
behaviour drifts, the score sinks below the 0.2 threshold toward the end of
the first week, retraining triggers, and the score recovers from day 8.  The
reproduction drives the same loop with the behavioural-drift model: each
simulated day produces fresh sessions from the drifted profile, the deployed
system scores them, and the confidence monitor decides when to retrain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector
from repro.core.system import SmarterYou
from repro.datasets.collection import collect_session
from repro.devices.cloud import AuthenticationServer
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    get_free_form_dataset,
    get_lab_dataset,
    get_population,
)
from repro.sensors.drift import BehaviorDriftModel
from repro.sensors.types import Context, DeviceType

#: Confidence threshold used by the paper.
PAPER_CS_THRESHOLD = 0.2
#: Day around which the paper's user crosses the threshold and retrains.
PAPER_RETRAIN_DAY = 7.0
#: Total length of the paper's trace.
PAPER_TRACE_DAYS = 12.0


@dataclass(frozen=True)
class DailyConfidence:
    """Mean confidence score of one simulated day."""

    day: float
    mean_confidence: float
    accepted_fraction: float
    retrained_today: bool


@dataclass
class RetrainingTraceResult:
    """The full Figure 7 trace."""

    user_id: str
    threshold: float
    daily: list[DailyConfidence]
    retraining_days: list[float]

    def confidence_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(days, mean confidence) series for plotting."""
        return (
            np.array([entry.day for entry in self.daily]),
            np.array([entry.mean_confidence for entry in self.daily]),
        )

    def min_confidence_before_retraining(self) -> float:
        """Lowest daily mean confidence observed before the first retraining."""
        before = [
            entry.mean_confidence
            for entry in self.daily
            if not self.retraining_days or entry.day < self.retraining_days[0]
        ]
        return float(min(before)) if before else float("nan")

    def confidence_recovered(self) -> bool:
        """Whether the score after retraining exceeds the threshold again."""
        if not self.retraining_days:
            return False
        after = [
            entry.mean_confidence
            for entry in self.daily
            if entry.day > self.retraining_days[0]
        ]
        return bool(after) and float(np.mean(after)) > self.threshold

    def to_text(self) -> str:
        """Render the daily trace."""
        rows = [
            (
                entry.day,
                entry.mean_confidence,
                entry.accepted_fraction,
                "retrained" if entry.retrained_today else "",
            )
            for entry in self.daily
        ]
        return format_table(
            ["day", "mean confidence", "accepted fraction", "event"],
            rows,
            title=(
                f"Figure 7: confidence score under drift (threshold {self.threshold}; "
                f"paper retrains around day {PAPER_RETRAIN_DAY:.0f} of {PAPER_TRACE_DAYS:.0f})"
            ),
        )


def run(
    scale: ExperimentScale = DEFAULT_SCALE,
    n_days: int = 12,
    drift_acceleration: float = 4.0,
    user_index: int = 0,
) -> RetrainingTraceResult:
    """Simulate *n_days* of drifting usage with automatic retraining.

    ``drift_acceleration`` compresses the paper's weeks-long drift into the
    simulated horizon so the threshold crossing happens within the trace at
    reproduction scale.
    """
    if n_days < 2:
        raise ValueError("n_days must be >= 2")
    population = get_population(scale.n_users, scale.seed)
    owner = population[user_index]
    dataset = get_free_form_dataset(scale)
    lab = get_lab_dataset(scale)

    config = SmarterYouConfig(
        window_seconds=scale.window_seconds,
        target_enrollment_windows=20,
        confidence_threshold=PAPER_CS_THRESHOLD,
        confidence_window_days=1.0,
    )
    phone_matrix = lab.device_matrix(
        DeviceType.SMARTPHONE, config.window_seconds, spec=config.phone_feature_spec
    )
    detector = ContextDetector(spec=config.phone_feature_spec).fit(
        phone_matrix, exclude_user=owner.user_id
    )
    server = AuthenticationServer(seed=scale.seed)
    system = SmarterYou(config=config, server=server, context_detector=detector)
    system.contribute_other_users(dataset, exclude=owner.user_id)
    system.enroll(owner.user_id, dataset.sessions_for(owner.user_id))

    drift = BehaviorDriftModel(owner.profile, seed=scale.seed + 5)
    # Long enough that each context contributes a solid batch of windows both
    # for daily scoring and for the retraining upload.
    session_duration = max(10 * scale.window_seconds, 60.0)
    daily: list[DailyConfidence] = []
    retraining_days: list[float] = []
    for day in range(1, n_days + 1):
        drifted_profile = drift.profile_at(day * drift_acceleration).with_user_id(owner.user_id)
        day_scores: list[float] = []
        day_accepts: list[bool] = []
        day_sessions = []
        # The legitimate owner starts each day with an explicit login, which
        # clears any false lockout caused by the previous day's drifted windows
        # (Section IV-B, post-authentication re-instatement).
        system.response.explicit_reauthentication(True)
        for context in (Context.HANDHELD_STATIC, Context.MOVING):
            session = collect_session(
                drifted_profile,
                context,
                session_duration,
                sensors=config.sensors,
                seed=scale.seed + 1000 + day * 10 + (0 if context is Context.MOVING else 1),
            )
            day_sessions.append(session)
            outcomes = system.process_session(session, day=float(day))
            day_scores.extend(outcome.decision.confidence_score for outcome in outcomes)
            day_accepts.extend(outcome.decision.accepted for outcome in outcomes)
        retrained = False
        if system.should_retrain(float(day)):
            system.retrain(day_sessions, day=float(day))
            retrained = True
            retraining_days.append(float(day))
        daily.append(
            DailyConfidence(
                day=float(day),
                mean_confidence=float(np.mean(day_scores)) if day_scores else 0.0,
                accepted_fraction=float(np.mean(day_accepts)) if day_accepts else 0.0,
                retrained_today=retrained,
            )
        )
    return RetrainingTraceResult(
        user_id=owner.user_id,
        threshold=config.confidence_threshold,
        daily=daily,
        retraining_days=retraining_days,
    )
