"""Experiment E-T3 — Table III: correlations between pairs of features.

Per device, the paper averages (over users) the Pearson correlation between
every pair of accelerometer/gyroscope features and uses the result to drop
``range``, which duplicates ``var``.  The reproduction computes the same
per-user-averaged correlation matrix and reports the redundant pairs it
implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.features.selection import correlation_prune
from repro.features.vector import FeatureMatrix, FeatureVectorSpec
from repro.sensors.types import DeviceType, SELECTED_SENSORS
from repro.stats.correlation import correlation_matrix

#: Feature the paper drops because of this analysis, and its partner.
PAPER_REDUNDANT_PAIR = ("range", "var")

#: Correlation the paper observes between Ran and Var (0.90-0.95 per device).
PAPER_RAN_VAR_CORRELATION = 0.9


def _table3_spec(device: DeviceType) -> FeatureVectorSpec:
    """The eight features per sensor shown in Table III (no peak2_f)."""
    return FeatureVectorSpec(
        sensors=SELECTED_SENSORS,
        time_features=("mean", "var", "max", "min", "range"),
        frequency_features=("peak", "peak_f", "peak2"),
        devices=(device,),
    )


def _per_user_average_correlation(matrix: FeatureMatrix) -> np.ndarray:
    """Correlation matrix averaged over (user, context) groups.

    Correlations are computed within each user's windows of a single coarse
    context and then averaged; pooling the contexts would make every feature
    correlate with every other one simply because moving windows have larger
    values across the board.
    """
    users = sorted(set(matrix.user_ids))
    contexts = sorted(set(matrix.contexts)) or [None]
    user_array = np.asarray(matrix.user_ids, dtype=object)
    context_array = np.asarray(matrix.contexts, dtype=object)
    per_group = []
    for user in users:
        for context in contexts:
            mask = user_array == user
            if context is not None:
                mask = mask & (context_array == context)
            rows = matrix.values[mask]
            if len(rows) >= 3:
                per_group.append(correlation_matrix(rows))
    if not per_group:
        raise ValueError("not enough rows per user/context to compute correlations")
    return np.mean(np.stack(per_group), axis=0)


@dataclass
class FeatureCorrelationResult:
    """Per-device averaged feature-correlation matrices."""

    feature_names: dict[DeviceType, list[str]]
    correlations: dict[DeviceType, np.ndarray]

    def correlation_between(self, device: DeviceType, feature_a: str, feature_b: str) -> float:
        """Correlation between two feature columns (by suffix match)."""
        names = self.feature_names[device]

        def find(suffix: str) -> int:
            for index, name in enumerate(names):
                if name.endswith(f".{suffix}"):
                    return index
            raise KeyError(f"no feature ending in {suffix!r} for {device.value}")

        return float(self.correlations[device][find(feature_a), find(feature_b)])

    def redundant_features(self, device: DeviceType, threshold: float = 0.8) -> list[tuple[str, str, float]]:
        """Feature pairs exceeding the redundancy threshold."""
        names = self.feature_names[device]
        corr = self.correlations[device]
        pairs = []
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                if abs(corr[i, j]) >= threshold:
                    pairs.append((names[i], names[j], float(corr[i, j])))
        return pairs

    def to_text(self) -> str:
        """Render the strongest correlations and the resulting pruning decision."""
        blocks = []
        for device in self.correlations:
            redundant = self.redundant_features(device)
            rows = [(a, b, value) for a, b, value in redundant] or [("-", "-", 0.0)]
            blocks.append(
                format_table(
                    ["feature A", "feature B", "correlation"],
                    rows,
                    title=(
                        f"Table III ({device.value}): redundant pairs (|r| >= 0.8); "
                        f"paper drops {PAPER_REDUNDANT_PAIR[0]!r} (r with var ~{PAPER_RAN_VAR_CORRELATION})"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(scale: ExperimentScale = DEFAULT_SCALE) -> FeatureCorrelationResult:
    """Compute per-device averaged feature-correlation matrices."""
    dataset = get_free_form_dataset(scale)
    feature_names: dict[DeviceType, list[str]] = {}
    correlations: dict[DeviceType, np.ndarray] = {}
    for device in (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH):
        matrix = dataset.device_matrix(device, scale.window_seconds, spec=_table3_spec(device))
        feature_names[device] = list(matrix.feature_names)
        correlations[device] = _per_user_average_correlation(matrix)
    return FeatureCorrelationResult(feature_names=feature_names, correlations=correlations)


def prune_with_library(scale: ExperimentScale = DEFAULT_SCALE) -> tuple[list[str], list[tuple[str, str, float]]]:
    """Run the library's correlation pruning on the phone matrix (sanity hook)."""
    dataset = get_free_form_dataset(scale)
    matrix = dataset.device_matrix(
        DeviceType.SMARTPHONE, scale.window_seconds, spec=_table3_spec(DeviceType.SMARTPHONE)
    )
    return correlation_prune(matrix, threshold=0.85)
