"""Experiment E-T4 — Table IV: correlations between phone and watch features.

The paper checks whether the same feature measured on the two devices is
redundant; because the wrist and the phone see different views of the body's
motion, the cross-device correlations are weak and all features are kept.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table, get_free_form_dataset
from repro.features.vector import FeatureVectorSpec
from repro.sensors.types import DeviceType, SELECTED_SENSORS
from repro.stats.correlation import cross_correlation_matrix

#: The paper's qualitative finding: no strong cross-device correlation
#: (all reported |r| values stay below roughly 0.45).
PAPER_MAX_ABS_CORRELATION = 0.45


def _spec(device: DeviceType) -> FeatureVectorSpec:
    """The seven selected features per sensor for one device (Table IV layout)."""
    return FeatureVectorSpec(sensors=SELECTED_SENSORS, devices=(device,))


@dataclass
class CrossDeviceCorrelationResult:
    """Watch-feature x phone-feature correlation matrix averaged over users."""

    watch_features: list[str]
    phone_features: list[str]
    correlations: np.ndarray

    @property
    def max_abs_correlation(self) -> float:
        """Largest absolute cross-device correlation observed."""
        return float(np.max(np.abs(self.correlations)))

    @property
    def mean_abs_correlation(self) -> float:
        """Mean absolute cross-device correlation."""
        return float(np.mean(np.abs(self.correlations)))

    def to_text(self) -> str:
        """Render summary statistics plus the largest entries."""
        flat = [
            (self.watch_features[i], self.phone_features[j], float(self.correlations[i, j]))
            for i in range(len(self.watch_features))
            for j in range(len(self.phone_features))
        ]
        flat.sort(key=lambda item: -abs(item[2]))
        rows = flat[:10]
        header = format_table(
            ["watch feature", "phone feature", "correlation"],
            rows,
            title=(
                "Table IV: strongest cross-device correlations "
                f"(measured max |r| = {self.max_abs_correlation:.2f}, mean |r| = "
                f"{self.mean_abs_correlation:.2f}; paper max |r| ~ {PAPER_MAX_ABS_CORRELATION})"
            ),
        )
        return header


def run(scale: ExperimentScale = DEFAULT_SCALE) -> CrossDeviceCorrelationResult:
    """Compute the averaged watch-vs-phone feature correlations.

    Correlations are computed per (user, coarse context) group and averaged,
    so they measure whether the two devices add information beyond the shared
    body motion — pooling contexts would inflate them through the obvious
    stationary-versus-moving difference.
    """
    dataset = get_free_form_dataset(scale)
    users = dataset.user_ids()
    per_group_matrices = []
    watch_names: list[str] = []
    phone_names: list[str] = []
    for user in users:
        sessions = dataset.sessions_for(user)
        by_context: dict[str, tuple[list[np.ndarray], list[np.ndarray]]] = {}
        for session in sessions:
            watch = session.device_features(
                DeviceType.SMARTWATCH, scale.window_seconds, spec=_spec(DeviceType.SMARTWATCH)
            )
            phone = session.device_features(
                DeviceType.SMARTPHONE, scale.window_seconds, spec=_spec(DeviceType.SMARTPHONE)
            )
            n_windows = min(len(watch), len(phone))
            if n_windows == 0:
                continue
            watch_rows, phone_rows = by_context.setdefault(
                session.coarse_context.value, ([], [])
            )
            watch_rows.append(watch.values[:n_windows])
            phone_rows.append(phone.values[:n_windows])
            watch_names = watch.feature_names
            phone_names = phone.feature_names
        for watch_rows, phone_rows in by_context.values():
            if not watch_rows:
                continue
            watch_stack = np.vstack(watch_rows)
            phone_stack = np.vstack(phone_rows)
            if len(watch_stack) >= 3:
                per_group_matrices.append(
                    cross_correlation_matrix(watch_stack, phone_stack)
                )
    if not per_group_matrices:
        raise ValueError("no user had enough aligned windows for Table IV")
    return CrossDeviceCorrelationResult(
        watch_features=watch_names,
        phone_features=phone_names,
        correlations=np.mean(np.stack(per_group_matrices), axis=0),
    )
