"""Experiment E-T8 — Table VIII: battery consumption in four scenarios."""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.battery import BatteryModel, PowerScenario, ScenarioResult
from repro.experiments.common import DEFAULT_SCALE, ExperimentScale, format_table

#: The paper's reported drain percentages per scenario.
PAPER_TABLE_VIII = {
    PowerScenario.LOCKED_SMARTERYOU_OFF: 2.8,
    PowerScenario.LOCKED_SMARTERYOU_ON: 4.9,
    PowerScenario.ACTIVE_SMARTERYOU_OFF: 5.2,
    PowerScenario.ACTIVE_SMARTERYOU_ON: 7.6,
}

#: Extra drains the paper highlights: +2.1 % idle, +2.4 % active.
PAPER_IDLE_OVERHEAD_PERCENT = 2.1
PAPER_ACTIVE_OVERHEAD_PERCENT = 2.4


@dataclass
class BatteryExperimentResult:
    """Measured drain per scenario plus the SmarterYou overheads."""

    scenarios: dict[PowerScenario, ScenarioResult]

    def drain_percent(self, scenario: PowerScenario) -> float:
        """Battery drain of one scenario, in percent of capacity."""
        return self.scenarios[scenario].consumed_percent

    @property
    def idle_overhead_percent(self) -> float:
        """Extra drain of running SmarterYou while the phone is locked (12 h)."""
        return self.drain_percent(PowerScenario.LOCKED_SMARTERYOU_ON) - self.drain_percent(
            PowerScenario.LOCKED_SMARTERYOU_OFF
        )

    @property
    def active_overhead_percent(self) -> float:
        """Extra drain of running SmarterYou during one hour of periodic use."""
        return self.drain_percent(PowerScenario.ACTIVE_SMARTERYOU_ON) - self.drain_percent(
            PowerScenario.ACTIVE_SMARTERYOU_OFF
        )

    def to_text(self) -> str:
        """Render measured vs. paper drain per scenario."""
        rows = [
            (
                scenario.value,
                result.duration_hours,
                result.consumed_percent,
                PAPER_TABLE_VIII[scenario],
            )
            for scenario, result in self.scenarios.items()
        ]
        table = format_table(
            ["scenario", "duration (h)", "drain % (measured)", "drain % (paper)"],
            rows,
            title="Table VIII: battery consumption",
        )
        overheads = (
            f"SmarterYou overhead: idle +{self.idle_overhead_percent:.1f}% "
            f"(paper +{PAPER_IDLE_OVERHEAD_PERCENT}%), "
            f"active +{self.active_overhead_percent:.1f}% "
            f"(paper +{PAPER_ACTIVE_OVERHEAD_PERCENT}%)"
        )
        return f"{table}\n{overheads}"


def run(scale: ExperimentScale = DEFAULT_SCALE) -> BatteryExperimentResult:
    """Simulate the four Table VIII scenarios with the battery model."""
    model = BatteryModel(sampling_rate_hz=50.0)
    return BatteryExperimentResult(scenarios=model.table_viii())
