"""Experiment E-F6 — Figure 6: detection of masquerading (mimicry) attacks.

Each attacker observes a victim and imitates the victim's behaviour; the
experiment deploys a full SmarterYou instance for the victim and replays the
attack sessions, measuring how long each attacker retains access.  The paper
reports ~90 % of attackers locked out within 6 s (one window) and all of them
within 18 s, consistent with the per-window FAR raised to the number of
windows survived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.attackers import AttackSession, MimicryAttacker
from repro.attacks.evaluation import DetectionTimeline, evaluate_detection_time, escape_probability
from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector
from repro.core.system import SmarterYou
from repro.devices.cloud import AuthenticationServer
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentScale,
    format_table,
    get_free_form_dataset,
    get_lab_dataset,
    get_population,
)
from repro.sensors.types import Context, DeviceType

#: The paper's qualitative milestones.
PAPER_FRACTION_DETECTED_AT_6S = 0.9
PAPER_ALL_DETECTED_BY_S = 18.0

#: Mimicry fidelity assumed for the VCR-observation attackers: the coarse,
#: visually observable half of the victim's behaviour is copied, the
#: fine-grained dynamics are not.
MIMICRY_FIDELITY = 0.5


@dataclass
class MasqueradeResult:
    """Detection timeline of the mimicry attacks against one victim."""

    victim_id: str
    timeline: DetectionTimeline
    survival_times: np.ndarray
    survival_fractions: np.ndarray

    def fraction_detected_within(self, seconds: float) -> float:
        """Fraction of attackers locked out within *seconds*."""
        return self.timeline.fraction_detected_within(seconds)

    def to_text(self) -> str:
        """Render the survival curve plus the theoretical escape probabilities."""
        rows = [
            (float(t), float(fraction))
            for t, fraction in zip(self.survival_times, self.survival_fractions)
        ]
        curve = format_table(
            ["time (s)", "fraction of adversaries with access"],
            rows,
            title=(
                "Figure 6: mimicry-attack survival curve "
                f"(paper: ~{PAPER_FRACTION_DETECTED_AT_6S:.0%} detected within 6s, "
                f"all by {PAPER_ALL_DETECTED_BY_S:.0f}s)"
            ),
            float_format="{:.2f}",
        )
        theory_rows = [
            (n, escape_probability(0.028, n)) for n in (1, 2, 3, 4)
        ]
        theory = format_table(
            ["windows survived", "escape probability (FAR=2.8%)"],
            theory_rows,
            title="Theoretical escape probability p^n (Section V-G)",
            float_format="{:.6f}",
        )
        return f"{curve}\n\n{theory}"


def _deploy_for_victim(
    scale: ExperimentScale, victim_id: str, window_seconds: float
) -> SmarterYou:
    """Train a full SmarterYou deployment protecting *victim_id*."""
    dataset = get_free_form_dataset(scale)
    lab = get_lab_dataset(scale)
    config = SmarterYouConfig(
        window_seconds=window_seconds,
        target_enrollment_windows=20,
        lockout_consecutive_rejections=1,
    )
    phone_matrix = lab.device_matrix(
        DeviceType.SMARTPHONE, window_seconds, spec=config.phone_feature_spec
    )
    detector = ContextDetector(spec=config.phone_feature_spec).fit(
        phone_matrix, exclude_user=victim_id
    )
    server = AuthenticationServer(seed=scale.seed)
    system = SmarterYou(config=config, server=server, context_detector=detector)
    system.contribute_other_users(dataset, exclude=victim_id)
    system.enroll(victim_id, dataset.sessions_for(victim_id))
    return system


def run(scale: ExperimentScale = DEFAULT_SCALE, victim_index: int = 0) -> MasqueradeResult:
    """Run the masquerading-attack study against one victim."""
    population = get_population(scale.n_users, scale.seed)
    victim = population[victim_index]
    system = _deploy_for_victim(scale, victim.user_id, scale.window_seconds)
    attack_duration = 10 * scale.window_seconds
    attacks: list[AttackSession] = []
    attacker_pool = [p for p in population if p.user_id != victim.user_id]
    for index in range(scale.n_mimicry_attackers):
        attacker_participant = attacker_pool[index % len(attacker_pool)]
        attacker = MimicryAttacker(
            attacker_participant.profile,
            fidelity=MIMICRY_FIDELITY,
            seed=scale.seed + 100 + index,
        )
        # Attackers alternate between the two coarse behaviours, as the paper's
        # subjects imitated whatever task the victim performed.
        context = Context.MOVING if index % 2 == 0 else Context.HANDHELD_STATIC
        attacks.append(attacker.attack(victim.profile, context, attack_duration))
    timeline = evaluate_detection_time(system, attacks, window_seconds=scale.window_seconds)
    times, fractions = timeline.survival_curve(horizon_s=attack_duration)
    return MasqueradeResult(
        victim_id=victim.user_id,
        timeline=timeline,
        survival_times=times,
        survival_fractions=fractions,
    )
