"""Shared infrastructure for the experiment harness.

Provides the :class:`ExperimentScale` knob (how big a study to simulate),
cached dataset builders so that benchmarks reusing the same synthetic study
do not regenerate it, and plain-text table formatting used by every
experiment's ``to_text()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Iterable, Sequence

from repro.datasets.collection import (
    SensorDataset,
    collect_free_form_dataset,
    collect_lab_context_dataset,
)
from repro.datasets.population import StudyPopulation, build_study_population
from repro.sensors.types import Context, SensorType


@dataclass(frozen=True)
class ExperimentScale:
    """How large a synthetic study to run.

    The paper's study (35 users, two weeks of free-form usage) is too large to
    regenerate on every benchmark run, so experiments accept a scale object.
    ``DEFAULT_SCALE`` finishes each experiment in seconds; ``PAPER_SCALE``
    matches the paper's participant count and window budget.

    Attributes
    ----------
    n_users:
        Number of participants simulated.
    session_duration:
        Seconds of recording per session.
    sessions_per_context:
        Sessions per user per fine context in the free-form study.
    lab_session_duration:
        Seconds of recording per lab (context-detection) session.
    window_seconds:
        Default analysis window.
    data_sizes:
        Training-set sizes swept by the Figure 5 experiment.
    window_sizes:
        Window lengths (seconds) swept by the Figure 4 experiment.
    n_mimicry_attackers:
        Attackers per victim in the masquerading study.
    seed:
        Top-level seed from which all randomness is derived.
    """

    n_users: int = 8
    session_duration: float = 120.0
    sessions_per_context: int = 2
    lab_session_duration: float = 90.0
    window_seconds: float = 6.0
    data_sizes: tuple[int, ...] = (10, 20, 40, 60, 80)
    window_sizes: tuple[float, ...] = (1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0)
    n_mimicry_attackers: int = 6
    seed: int = 2017

    def scaled_down(self, factor: float) -> "ExperimentScale":
        """A proportionally smaller scale (used by quick tests)."""
        if factor <= 0:
            raise ValueError(f"factor must be > 0, got {factor}")
        return replace(
            self,
            n_users=max(3, int(self.n_users * factor)),
            session_duration=max(30.0, self.session_duration * factor),
            sessions_per_context=max(1, int(self.sessions_per_context * factor)),
            lab_session_duration=max(30.0, self.lab_session_duration * factor),
        )


#: Fast scale for unit/integration tests.
SMALL_SCALE = ExperimentScale(
    n_users=4,
    session_duration=60.0,
    sessions_per_context=1,
    lab_session_duration=45.0,
    data_sizes=(5, 10, 15),
    window_sizes=(2.0, 6.0, 12.0),
    n_mimicry_attackers=3,
)

#: Default scale used by the benchmark harness.
DEFAULT_SCALE = ExperimentScale()

#: The paper's study dimensions (35 users, long sessions, 800-window budget).
PAPER_SCALE = ExperimentScale(
    n_users=35,
    session_duration=1200.0,
    sessions_per_context=4,
    lab_session_duration=1200.0,
    data_sizes=(100, 200, 400, 600, 800, 1000, 1200),
    window_sizes=(1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0),
    n_mimicry_attackers=20,
)


# --------------------------------------------------------------------------- #
# cached dataset builders
# --------------------------------------------------------------------------- #


@lru_cache(maxsize=8)
def get_population(n_users: int, seed: int) -> StudyPopulation:
    """Build (and cache) the synthetic study population."""
    return build_study_population(n_users=n_users, seed=seed)


@lru_cache(maxsize=4)
def _free_form_cached(
    n_users: int,
    session_duration: float,
    sessions_per_context: int,
    seed: int,
    sensors: tuple[SensorType, ...],
) -> SensorDataset:
    population = get_population(n_users, seed)
    return collect_free_form_dataset(
        population,
        session_duration=session_duration,
        sessions_per_context=sessions_per_context,
        sensors=sensors,
        seed=seed,
    )


def get_free_form_dataset(
    scale: ExperimentScale,
    sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
) -> SensorDataset:
    """Free-form (authentication) dataset for *scale*, cached across calls."""
    return _free_form_cached(
        scale.n_users,
        scale.session_duration,
        scale.sessions_per_context,
        scale.seed,
        tuple(sensors),
    )


@lru_cache(maxsize=4)
def _lab_cached(
    n_users: int, lab_session_duration: float, seed: int
) -> SensorDataset:
    population = get_population(n_users, seed)
    return collect_lab_context_dataset(
        population,
        session_duration=lab_session_duration,
        contexts=tuple(Context),
        seed=seed + 1,
    )


def get_lab_dataset(scale: ExperimentScale) -> SensorDataset:
    """Lab (context-detection) dataset for *scale*, cached across calls."""
    return _lab_cached(scale.n_users, scale.lab_session_duration, scale.seed)


@lru_cache(maxsize=2)
def _all_sensor_cached(
    n_users: int, session_duration: float, sessions_per_context: int, seed: int
) -> SensorDataset:
    population = get_population(n_users, seed)
    return collect_free_form_dataset(
        population,
        session_duration=session_duration,
        sessions_per_context=sessions_per_context,
        sensors=tuple(SensorType),
        seed=seed + 2,
    )


def get_all_sensor_dataset(scale: ExperimentScale) -> SensorDataset:
    """A smaller dataset recorded with *all five* sensors (for Table II).

    Several sessions per context are collected so the within-user variance of
    the environment-driven sensors (which changes per session, not per
    sample) is represented in the Fisher-score estimates.
    """
    duration = min(scale.session_duration, 60.0)
    sessions = max(3, scale.sessions_per_context)
    return _all_sensor_cached(min(scale.n_users, 8), duration, sessions, scale.seed)


def clear_dataset_caches() -> None:
    """Drop every cached dataset (frees memory between benchmark groups)."""
    _free_form_cached.cache_clear()
    _lab_cached.cache_clear()
    _all_sensor_cached.cache_clear()
    get_population.cache_clear()


# --------------------------------------------------------------------------- #
# plain-text table rendering
# --------------------------------------------------------------------------- #


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned plain-text table.

    Floats are formatted with *float_format*; everything else is ``str()``-ed.
    """
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float) -> float:
    """Convert a fraction to a percentage (kept explicit for readability)."""
    return 100.0 * value
