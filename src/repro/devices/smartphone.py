"""Smartphone device model (the paper's Nexus 5)."""

from __future__ import annotations

from repro.devices.device import Device, DeviceSpec
from repro.sensors.behavior import BehaviorProfile
from repro.sensors.types import DeviceType, SensorType
from repro.utils.rng import RandomState

#: Default hardware description mirroring the paper's Nexus 5 test device.
NEXUS5_SPEC = DeviceSpec(
    model_name="Nexus 5",
    sensors=tuple(SensorType),
    sampling_rate=50.0,
    battery_capacity_mah=2300.0,
)


class Smartphone(Device):
    """The primary device: hosts the testing module and all its sensors."""

    device_type = DeviceType.SMARTPHONE

    def __init__(
        self,
        profile: BehaviorProfile,
        spec: DeviceSpec = NEXUS5_SPEC,
        seed: RandomState = None,
    ) -> None:
        super().__init__(spec=spec, profile=profile, seed=seed)
