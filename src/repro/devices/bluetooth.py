"""Bluetooth link model between the smartwatch and the smartphone.

The watch continuously streams raw sensor data to the phone (Section IV-A1).
The link model accounts for latency, occasional packet loss and the energy
cost of the radio, and pushes every payload through the
:class:`~repro.devices.secure_channel.SecureChannel` so the confidentiality /
integrity path of Section IV-C is exercised end to end.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.devices.secure_channel import IntegrityError, SecureChannel
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability, check_positive


@dataclass
class LinkStats:
    """Running counters describing the link's activity.

    Attributes
    ----------
    packets_sent / packets_dropped:
        Number of payloads attempted and lost.
    bytes_sent:
        Total encrypted bytes placed on the air.
    total_latency_s:
        Sum of per-packet latencies (for averaging).
    energy_mah:
        Estimated radio energy spent, in milliamp-hours.
    """

    packets_sent: int = 0
    packets_dropped: int = 0
    bytes_sent: int = 0
    total_latency_s: float = 0.0
    energy_mah: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of packets delivered (1.0 when nothing was sent)."""
        if self.packets_sent == 0:
            return 1.0
        return 1.0 - self.packets_dropped / self.packets_sent

    @property
    def mean_latency_s(self) -> float:
        """Average per-packet latency in seconds."""
        delivered = self.packets_sent - self.packets_dropped
        if delivered == 0:
            return 0.0
        return self.total_latency_s / delivered


class BluetoothLink:
    """A lossy, encrypted watch-to-phone transport for arbitrary payloads.

    Parameters
    ----------
    loss_probability:
        Probability that a packet is dropped (payload lost, energy still spent).
    base_latency_s / jitter_s:
        Latency model: fixed base plus exponential jitter.
    energy_per_kb_mah:
        Radio energy per kilobyte transferred.
    seed:
        Seed for loss and jitter draws.
    """

    def __init__(
        self,
        loss_probability: float = 0.01,
        base_latency_s: float = 0.02,
        jitter_s: float = 0.01,
        energy_per_kb_mah: float = 0.0006,
        seed: RandomState = None,
    ) -> None:
        check_probability(loss_probability, "loss_probability")
        check_positive(base_latency_s, "base_latency_s", strict=False)
        check_positive(jitter_s, "jitter_s", strict=False)
        check_positive(energy_per_kb_mah, "energy_per_kb_mah", strict=False)
        self.loss_probability = loss_probability
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.energy_per_kb_mah = energy_per_kb_mah
        self.stats = LinkStats()
        self._rng = ensure_rng(seed)
        self._sender, self._receiver = SecureChannel.pair("watch-phone")

    def transmit(self, payload: Any) -> Any | None:
        """Send a Python object across the link.

        Returns the deserialised object on delivery, or ``None`` if the packet
        was lost.  Tampered packets raise :class:`IntegrityError` (they never
        occur through this API but the receive path checks anyway).
        """
        raw = pickle.dumps(payload)
        message = self._sender.encrypt(raw)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += message.total_bytes()
        self.stats.energy_mah += self.energy_per_kb_mah * message.total_bytes() / 1024.0
        if self._rng.random() < self.loss_probability:
            self.stats.packets_dropped += 1
            return None
        latency = self.base_latency_s + float(self._rng.exponential(self.jitter_s))
        self.stats.total_latency_s += latency
        try:
            plaintext = self._receiver.decrypt(message)
        except IntegrityError:
            self.stats.packets_dropped += 1
            raise
        return pickle.loads(plaintext)
