"""Smartwatch device model (the paper's Moto 360)."""

from __future__ import annotations

from repro.devices.device import Device, DeviceSpec
from repro.sensors.behavior import BehaviorProfile
from repro.sensors.types import DeviceType, SensorType
from repro.utils.rng import RandomState

#: Default hardware description mirroring the paper's Moto 360 smartwatch.
MOTO360_SPEC = DeviceSpec(
    model_name="Moto 360",
    sensors=tuple(SensorType),
    sampling_rate=50.0,
    battery_capacity_mah=320.0,
)


class Smartwatch(Device):
    """The auxiliary wearable: streams wrist sensor data to the phone."""

    device_type = DeviceType.SMARTWATCH

    def __init__(
        self,
        profile: BehaviorProfile,
        spec: DeviceSpec = MOTO360_SPEC,
        seed: RandomState = None,
    ) -> None:
        super().__init__(spec=spec, profile=profile, seed=seed)
