"""Cloud authentication server hosting the training module (Figure 1).

Responsibilities mirrored from the paper:

* collect anonymised authentication feature vectors from all participating
  users (the "other users" pool that provides negative training examples);
* train, per usage context, a kernel-ridge-regression authentication model
  for a target user — legitimate user's vectors against the anonymised pool;
* train the user-agnostic context-detection model from all users' labelled
  context feature vectors;
* ship trained model bundles back to the smartphone and retrain them when the
  phone reports behavioural drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.features.vector import FeatureMatrix
from repro.ml.base import BaseClassifier, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext
from repro.utils.rng import RandomState, derive_rng

#: Label used for the legitimate user inside a trained binary model.
LEGITIMATE_LABEL = "legitimate"
#: Label used for the anonymised other-user pool.
OTHER_LABEL = "other"


@dataclass
class ContextModel:
    """One per-context authentication model: a scaler plus a classifier."""

    context: CoarseContext
    scaler: StandardScaler
    classifier: BaseClassifier
    n_training_windows: int

    def _legitimate_sign(self) -> float:
        """+1 if the classifier's positive class is the legitimate user, else -1.

        Binary classifiers in this library treat ``classes_[1]`` as the
        positive (+1) class; because class labels are sorted alphabetically,
        "legitimate" sorts before "other" and ends up as the negative class.
        The confidence score of the paper is defined with the legitimate user
        on the positive side, so the raw decision value is sign-adjusted here.
        """
        classes = getattr(self.classifier, "classes_", None)
        if classes is not None and len(classes) == 2 and classes[1] == LEGITIMATE_LABEL:
            return 1.0
        return -1.0

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Confidence scores of raw feature rows (positive = legitimate)."""
        raw = self.classifier.decision_function(self.scaler.transform(features))
        return self._legitimate_sign() * raw

    def predict_legitimate(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask: which rows are classified as the legitimate user."""
        predictions = self.classifier.predict(self.scaler.transform(features))
        return predictions == LEGITIMATE_LABEL


@dataclass
class TrainedModelBundle:
    """Everything the phone downloads after (re)training.

    Attributes
    ----------
    user_id:
        The legitimate user the bundle authenticates.
    feature_names:
        Column order expected by every contained model.
    models:
        One authentication model per coarse context.
    version:
        Monotonically increasing training round (1 = initial enrolment).
    """

    user_id: str
    feature_names: list[str]
    models: dict[CoarseContext, ContextModel]
    version: int = 1

    def model_for(self, context: CoarseContext) -> ContextModel:
        """Return the model for *context*.

        Raises
        ------
        KeyError
            If no model was trained for the requested context.
        """
        if context not in self.models:
            raise KeyError(f"no authentication model trained for context {context.value!r}")
        return self.models[context]


def default_classifier_factory() -> BaseClassifier:
    """The paper's classifier: linear-kernel KRR solved in the primal."""
    return KernelRidgeClassifier(ridge=1.0, kernel="linear", solver="auto")


class AuthenticationServer:
    """The trusted cloud server running the training module.

    Parameters
    ----------
    classifier_factory:
        Zero-argument callable returning an unfitted authentication
        classifier; defaults to the paper's KRR configuration.
    context_detector_factory:
        Callable returning the unfitted user-agnostic context detector
        (default: a random forest as in Section V-E).
    max_other_users_windows:
        Cap on the number of anonymised negative windows used per training
        run, to keep retraining cheap.
    seed:
        Seed for negative-pool subsampling.
    """

    def __init__(
        self,
        classifier_factory: Callable[[], BaseClassifier] = default_classifier_factory,
        context_detector_factory: Callable[[], BaseClassifier] | None = None,
        max_other_users_windows: int = 2000,
        seed: RandomState = None,
    ) -> None:
        if max_other_users_windows < 1:
            raise ValueError("max_other_users_windows must be >= 1")
        self.classifier_factory = classifier_factory
        self.context_detector_factory = context_detector_factory or (
            lambda: RandomForestClassifier(n_estimators=40, max_depth=12, random_state=7)
        )
        self.max_other_users_windows = max_other_users_windows
        self._seed = seed
        self._feature_store: dict[str, list[FeatureMatrix]] = {}
        self._pseudonyms: dict[str, str] = {}
        self._training_rounds: dict[str, int] = {}
        self._context_detector: BaseClassifier | None = None
        self._context_scaler: StandardScaler | None = None

    # ------------------------------------------------------------------ #
    # enrolment and data collection
    # ------------------------------------------------------------------ #

    def _pseudonym(self, user_id: str) -> str:
        """Anonymise a user id; raw identities never enter the training pool."""
        if user_id not in self._pseudonyms:
            digest = hashlib.sha256(f"smarteryou|{user_id}".encode()).hexdigest()[:12]
            self._pseudonyms[user_id] = f"anon-{digest}"
        return self._pseudonyms[user_id]

    def upload_features(self, user_id: str, matrix: FeatureMatrix) -> str:
        """Store a user's authentication feature vectors under a pseudonym.

        Returns the pseudonym, which is what appears in the training pool.
        """
        if len(matrix) == 0:
            raise ValueError("refusing to store an empty feature matrix")
        pseudonym = self._pseudonym(user_id)
        self._feature_store.setdefault(pseudonym, []).append(matrix)
        return pseudonym

    def enrolled_users(self) -> list[str]:
        """Pseudonyms of every user with stored data."""
        return sorted(self._feature_store)

    def stored_window_count(self, user_id: str) -> int:
        """Number of stored feature windows for *user_id*."""
        pseudonym = self._pseudonym(user_id)
        return sum(len(matrix) for matrix in self._feature_store.get(pseudonym, []))

    # ------------------------------------------------------------------ #
    # context-detection model (user-agnostic)
    # ------------------------------------------------------------------ #

    def train_context_detector(
        self, matrix: FeatureMatrix, exclude_user: str | None = None
    ) -> BaseClassifier:
        """Train the user-agnostic context detector from labelled windows.

        Parameters
        ----------
        matrix:
            Labelled context feature vectors (``matrix.contexts`` holds the
            ground-truth coarse context per row).
        exclude_user:
            Optionally leave one user's rows out, so the detector used for a
            given user was trained only on *other* users' data (the paper's
            user-agnostic protocol).
        """
        if not matrix.contexts:
            raise ValueError("matrix must carry context labels")
        values = matrix.values
        labels = np.asarray(matrix.contexts, dtype=object)
        if exclude_user is not None and matrix.user_ids:
            keep = np.array([uid != exclude_user for uid in matrix.user_ids])
            values, labels = values[keep], labels[keep]
        if len(values) == 0:
            raise ValueError("no training rows left for the context detector")
        scaler = StandardScaler().fit(values)
        detector = self.context_detector_factory()
        detector.fit(scaler.transform(values), labels)
        self._context_detector = detector
        self._context_scaler = scaler
        return detector

    def download_context_detector(self) -> tuple[StandardScaler, BaseClassifier]:
        """Return the trained context detector for deployment on a phone."""
        if self._context_detector is None or self._context_scaler is None:
            raise RuntimeError("the context detector has not been trained yet")
        return self._context_scaler, self._context_detector

    # ------------------------------------------------------------------ #
    # authentication models (per user, per context)
    # ------------------------------------------------------------------ #

    def _collect_rows(
        self, pseudonym: str, context: CoarseContext
    ) -> tuple[np.ndarray, list[str]]:
        """All stored rows of one pseudonym under one coarse context."""
        rows: list[np.ndarray] = []
        feature_names: list[str] = []
        for matrix in self._feature_store.get(pseudonym, []):
            feature_names = matrix.feature_names
            if matrix.contexts:
                mask = np.array([ctx == context.value for ctx in matrix.contexts])
                rows.append(matrix.values[mask])
            else:
                rows.append(matrix.values)
        if not rows:
            return np.empty((0, 0)), feature_names
        return np.vstack(rows), feature_names

    def train_authentication_models(
        self,
        user_id: str,
        contexts: tuple[CoarseContext, ...] = tuple(CoarseContext),
    ) -> TrainedModelBundle:
        """Train (or retrain) the per-context models for *user_id*.

        The legitimate user's windows are the positive class; a subsample of
        every other enrolled pseudonym's windows forms the negative class.

        Raises
        ------
        ValueError
            If the user has no stored data for a requested context, or no
            other users are enrolled to provide negative examples.
        """
        pseudonym = self._pseudonym(user_id)
        if pseudonym not in self._feature_store:
            raise ValueError(f"user {user_id!r} has no uploaded feature data")
        others = [p for p in self._feature_store if p != pseudonym]
        if not others:
            raise ValueError("cannot train: no other users enrolled to provide negatives")
        models: dict[CoarseContext, ContextModel] = {}
        feature_names: list[str] = []
        round_number = self._training_rounds.get(pseudonym, 0) + 1
        for context in contexts:
            positive, feature_names = self._collect_rows(pseudonym, context)
            if len(positive) < 10:
                raise ValueError(
                    f"user {user_id!r} has only {len(positive)} windows under "
                    f"context {context.value!r}; need at least 10"
                )
            negative_parts = []
            for other in others:
                other_rows, _ = self._collect_rows(other, context)
                if len(other_rows):
                    negative_parts.append(other_rows)
            if not negative_parts:
                raise ValueError(
                    f"no other-user data available under context {context.value!r}"
                )
            negative = np.vstack(negative_parts)
            rng = derive_rng(self._seed, "negative-pool", pseudonym, context.value, round_number)
            if len(negative) > self.max_other_users_windows:
                keep = rng.choice(len(negative), size=self.max_other_users_windows, replace=False)
                negative = negative[keep]
            X = np.vstack([positive, negative])
            y = np.array([LEGITIMATE_LABEL] * len(positive) + [OTHER_LABEL] * len(negative))
            scaler = StandardScaler().fit(X)
            classifier = clone(self.classifier_factory())
            classifier.fit(scaler.transform(X), y)
            models[context] = ContextModel(
                context=context,
                scaler=scaler,
                classifier=classifier,
                n_training_windows=len(X),
            )
        self._training_rounds[pseudonym] = round_number
        return TrainedModelBundle(
            user_id=user_id,
            feature_names=feature_names,
            models=models,
            version=round_number,
        )

    def retrain(self, user_id: str, new_data: FeatureMatrix) -> TrainedModelBundle:
        """Accept fresh feature vectors after behavioural drift and retrain."""
        self.upload_features(user_id, new_data)
        return self.train_authentication_models(user_id)
