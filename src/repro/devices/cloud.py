"""Cloud authentication server hosting the training module (Figure 1).

Responsibilities mirrored from the paper:

* collect anonymised authentication feature vectors from all participating
  users (the "other users" pool that provides negative training examples);
* train, per usage context, a kernel-ridge-regression authentication model
  for a target user — legitimate user's vectors against the anonymised pool;
* train the user-agnostic context-detection model from all users' labelled
  context feature vectors;
* ship trained model bundles back to the smartphone and retrain them when the
  phone reports behavioural drift.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.devices.store import FeatureStore
from repro.features.vector import FeatureMatrix
from repro.ml.base import BaseClassifier, LinearDecisionRule, clone
from repro.ml.forest import RandomForestClassifier
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext
from repro.utils.rng import RandomState, derive_rng


@runtime_checkable
class BundlePublisher(Protocol):
    """What the server needs from a model registry (structural interface).

    The concrete :class:`~repro.service.registry.ModelRegistry` lives in the
    service layer *above* this module; depending on it structurally keeps
    the dependency graph acyclic without lazy-import workarounds.
    """

    def publish(self, bundle: "TrainedModelBundle") -> object:
        """Register a freshly trained bundle version."""
        ...

    def versions(self, user_id: str) -> list[int]:
        """All published version numbers for *user_id* (ascending)."""
        ...


#: Label used for the legitimate user inside a trained binary model.
LEGITIMATE_LABEL = "legitimate"
#: Label used for the anonymised other-user pool.
OTHER_LABEL = "other"
#: Minimum positive windows a user needs under a context to train its model.
MIN_WINDOWS_PER_CONTEXT = 10


@dataclass
class ContextModel:
    """One per-context authentication model: a scaler plus a classifier."""

    context: CoarseContext
    scaler: StandardScaler
    classifier: BaseClassifier
    n_training_windows: int

    def _legitimate_sign(self) -> float:
        """+1 if the classifier's positive class is the legitimate user, else -1.

        Binary classifiers in this library treat ``classes_[1]`` as the
        positive (+1) class; because class labels are sorted alphabetically,
        "legitimate" sorts before "other" and ends up as the negative class.
        The confidence score of the paper is defined with the legitimate user
        on the positive side, so the raw decision value is sign-adjusted here.
        """
        classes = getattr(self.classifier, "classes_", None)
        if classes is not None and len(classes) == 2 and classes[1] == LEGITIMATE_LABEL:
            return 1.0
        return -1.0

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Confidence scores of raw feature rows (positive = legitimate)."""
        raw = self.classifier.decision_function(self.scaler.transform(features))
        return self._legitimate_sign() * raw

    def predict_legitimate(self, features: np.ndarray) -> np.ndarray:
        """Boolean mask: which rows are classified as the legitimate user."""
        predictions = self.classifier.predict(self.scaler.transform(features))
        return predictions == LEGITIMATE_LABEL

    def batch_decisions(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(confidence scores, accept mask)`` for many rows.

        Equivalent to :meth:`decision_scores` plus :meth:`predict_legitimate`
        but scales and projects the batch only once where the classifier
        allows it: classifiers whose ``predict`` is a threshold on
        ``decision_function`` expose
        :meth:`~repro.ml.base.BaseClassifier.predict_from_decision` (the
        paper's KRR does), letting the scores already computed double as the
        predictions.  Classifiers without that hook (e.g. a probability-vote
        forest) fall back to a real ``predict`` call on the shared scaled
        matrix.
        """
        transformed = self.scaler.transform(features)
        raw = self.classifier.decision_function(transformed)
        predictions = self.classifier.predict_from_decision(raw)
        if predictions is None:
            predictions = self.classifier.predict(transformed)
        return self._legitimate_sign() * raw, predictions == LEGITIMATE_LABEL

    def decision_rule(self) -> LinearDecisionRule | None:
        """This model's whole scoring pass as one affine rule, if possible.

        Combines the scaler's standardisation with the classifier's
        :meth:`~repro.ml.base.BaseClassifier.decision_projection` so the
        coalescing frontend can fuse many users' models into one batched
        projection (:func:`repro.core.scoring.score_requests`).  Returns
        ``None`` — making callers fall back to :meth:`batch_decisions` —
        whenever the classifier has no affine form or the label layout
        cannot express accept/reject as a threshold on the raw score.
        """
        # Memoised: models are immutable once trained, and the coalescing
        # frontend asks for the rule on every flush (refitting builds a new
        # ContextModel, so the cache can never go stale in practice).
        cached = self.__dict__.get("_decision_rule_cache", False)
        if cached is not False:
            return cached
        rule: LinearDecisionRule | None = None
        projection = self.classifier.decision_projection()
        classes = getattr(self.classifier, "classes_", None)
        if (
            projection is not None
            and self.scaler.mean_ is not None
            and self.scaler.scale_ is not None
            and classes is not None
            and len(classes) == 2
            and LEGITIMATE_LABEL in classes
        ):
            x_offset, coef, y_offset = projection
            sign = self._legitimate_sign()
            # _decode_binary maps raw >= 0 to classes_[1]; acceptance
            # therefore thresholds on raw >= 0 exactly when classes_[1] is
            # the legitimate label (sign == +1).
            rule = LinearDecisionRule(
                mean=self.scaler.mean_,
                scale=self.scaler.scale_,
                x_offset=x_offset,
                coef=coef,
                y_offset=float(y_offset),
                sign=sign,
                accept_on_nonnegative=sign > 0,
            )
        self.__dict__["_decision_rule_cache"] = rule
        return rule


@dataclass
class TrainedModelBundle:
    """Everything the phone downloads after (re)training.

    Attributes
    ----------
    user_id:
        The legitimate user the bundle authenticates.
    feature_names:
        Column order expected by every contained model.
    models:
        One authentication model per coarse context.
    version:
        Monotonically increasing training round (1 = initial enrolment).
    """

    user_id: str
    feature_names: list[str]
    models: dict[CoarseContext, ContextModel]
    version: int = 1

    def model_for(self, context: CoarseContext) -> ContextModel:
        """Return the model for *context*.

        Raises
        ------
        KeyError
            If no model was trained for the requested context.
        """
        if context not in self.models:
            raise KeyError(f"no authentication model trained for context {context.value!r}")
        return self.models[context]


def default_classifier_factory() -> BaseClassifier:
    """The paper's classifier: linear-kernel KRR solved in the primal."""
    return KernelRidgeClassifier(ridge=1.0, kernel="linear", solver="auto")


def default_context_detector_factory(random_state: RandomState = 7) -> BaseClassifier:
    """The paper's user-agnostic context detector: a Section V-E random forest.

    The single source of the detector configuration — the paper-path
    :class:`~repro.core.context.ContextDetector`, this cloud server and the
    service gateway all build their detector from this factory, so the
    model a phone would run and the model the registry serves can never
    silently diverge.
    """
    return RandomForestClassifier(n_estimators=40, max_depth=12, random_state=random_state)


def fit_context_detector(
    matrix: FeatureMatrix,
    exclude_user: str | None = None,
    classifier: BaseClassifier | None = None,
    require_both_contexts: bool = False,
) -> tuple[StandardScaler, BaseClassifier]:
    """Train a user-agnostic context detector; the ONE training entry point.

    Both the paper path (:meth:`repro.core.context.ContextDetector.fit`)
    and the serving path (:meth:`AuthenticationServer.train_context_detector`,
    published to the registry by the gateway) delegate here, so scaling and
    fitting policy cannot drift between the phone-side reproduction and the
    fleet service.

    Parameters
    ----------
    matrix:
        Labelled context feature windows (``matrix.contexts`` holds the
        ground-truth coarse context per row).
    exclude_user:
        Optionally leave one user's rows out, so the detector used for a
        given user was trained only on *other* users' data (the paper's
        user-agnostic protocol).
    classifier:
        Unfitted detector classifier; defaults to
        :func:`default_context_detector_factory`.
    require_both_contexts:
        When true, reject training data whose remaining rows cover fewer
        than two distinct contexts (the paper path's policy: a detector
        that has only ever seen one context cannot discriminate).

    Returns
    -------
    tuple[StandardScaler, BaseClassifier]
        The fitted scaler and classifier pair.

    Raises
    ------
    ValueError
        If the matrix carries no context labels, no training rows remain
        after the exclusion, or (with ``require_both_contexts``) only one
        distinct context remains.
    """
    if not matrix.contexts:
        raise ValueError("matrix must carry context labels")
    values = matrix.values
    labels = np.asarray(matrix.contexts, dtype=object)
    if exclude_user is not None and matrix.user_ids:
        keep = np.array([uid != exclude_user for uid in matrix.user_ids])
        values, labels = values[keep], labels[keep]
    if len(values) == 0:
        raise ValueError("no training rows left for the context detector")
    if require_both_contexts and len(np.unique(labels)) < 2:
        raise ValueError("context training data must contain both contexts")
    scaler = StandardScaler().fit(values)
    detector = classifier if classifier is not None else default_context_detector_factory()
    detector.fit(scaler.transform(values), labels)
    return scaler, detector


class AuthenticationServer:
    """The trusted cloud server running the training module.

    Parameters
    ----------
    classifier_factory:
        Zero-argument callable returning an unfitted authentication
        classifier; defaults to the paper's KRR configuration.
    context_detector_factory:
        Callable returning the unfitted user-agnostic context detector
        (default: a random forest as in Section V-E).
    max_other_users_windows:
        Cap on the number of anonymised negative windows used per training
        run, to keep retraining cheap.
    seed:
        Seed for negative-pool subsampling.
    store:
        Optional pre-configured :class:`~repro.devices.store.FeatureStore`
        holding the anonymised window pool (a fresh unbounded-ish store is
        created when omitted).  Sharing a store between servers shares the
        negative pool.
    registry:
        Optional :class:`BundlePublisher` (in practice a
        :class:`~repro.service.registry.ModelRegistry`); when set, every
        trained bundle is published to it automatically.
    """

    def __init__(
        self,
        classifier_factory: Callable[[], BaseClassifier] = default_classifier_factory,
        context_detector_factory: Callable[[], BaseClassifier] | None = None,
        max_other_users_windows: int = 2000,
        seed: RandomState = None,
        store: FeatureStore | None = None,
        registry: BundlePublisher | None = None,
    ) -> None:
        if max_other_users_windows < 1:
            raise ValueError("max_other_users_windows must be >= 1")
        self.classifier_factory = classifier_factory
        self.context_detector_factory = (
            context_detector_factory or default_context_detector_factory
        )
        self.max_other_users_windows = max_other_users_windows
        self._seed = seed
        self.store = store if store is not None else FeatureStore()
        self.registry = registry
        self._pseudonyms: dict[str, str] = {}
        self._training_rounds: dict[str, int] = {}
        self._context_detector: BaseClassifier | None = None
        self._context_scaler: StandardScaler | None = None

    # ------------------------------------------------------------------ #
    # enrolment and data collection
    # ------------------------------------------------------------------ #

    def _pseudonym(self, user_id: str) -> str:
        """Anonymise a user id; raw identities never enter the training pool."""
        if user_id not in self._pseudonyms:
            digest = hashlib.sha256(f"smarteryou|{user_id}".encode()).hexdigest()[:12]
            self._pseudonyms[user_id] = f"anon-{digest}"
        return self._pseudonyms[user_id]

    def upload_features(self, user_id: str, matrix: FeatureMatrix) -> str:
        """Store a user's authentication feature vectors under a pseudonym.

        Returns the pseudonym, which is what appears in the training pool.

        Raises
        ------
        ValueError
            If the matrix is empty, or its ``feature_names`` do not match
            the schema established by earlier uploads (mixing layouts would
            silently poison the shared negative pool).
        """
        pseudonym = self._pseudonym(user_id)
        self.store.append(pseudonym, matrix)
        return pseudonym

    def enrolled_users(self) -> list[str]:
        """Pseudonyms of every user with stored data."""
        return sorted(self.store.users())

    def stored_window_count(self, user_id: str) -> int:
        """Number of stored feature windows for *user_id*."""
        return self.store.window_count(self._pseudonym(user_id))

    def contexts_for(self, user_id: str) -> tuple[CoarseContext, ...]:
        """Coarse contexts under which *user_id* has stored windows.

        Windows uploaded without per-row context labels count towards every
        context, so a user with only unlabelled data reports all contexts.
        """
        pseudonym = self._pseudonym(user_id)
        if self.store.unlabelled_count(pseudonym):
            return tuple(CoarseContext)
        stored = self.store.contexts_for(pseudonym)
        return tuple(
            context for context in CoarseContext if context.value in stored
        )

    def context_window_counts(self, user_id: str) -> dict[CoarseContext, int]:
        """Stored window count per trainable context of *user_id*.

        Counts include unlabelled (wildcard) windows, exactly as training's
        positive-row collection does.
        """
        pseudonym = self._pseudonym(user_id)
        return {
            context: self.store.window_count(pseudonym, context.value)
            for context in self.contexts_for(user_id)
        }

    def negative_window_counts(self, user_id: str) -> dict[CoarseContext, int]:
        """Other-user pool size per context *user_id* would train under."""
        pseudonym = self._pseudonym(user_id)
        return {
            context: self.store.negative_pool_size(pseudonym, context.value)
            for context in self.contexts_for(user_id)
        }

    # ------------------------------------------------------------------ #
    # context-detection model (user-agnostic)
    # ------------------------------------------------------------------ #

    def train_context_detector(
        self, matrix: FeatureMatrix, exclude_user: str | None = None
    ) -> BaseClassifier:
        """Train the user-agnostic context detector from labelled windows.

        Delegates to :func:`fit_context_detector` — the same entry point
        the paper-path :class:`~repro.core.context.ContextDetector` trains
        through — with this server's ``context_detector_factory`` supplying
        the unfitted classifier.

        Parameters
        ----------
        matrix:
            Labelled context feature vectors (``matrix.contexts`` holds the
            ground-truth coarse context per row).
        exclude_user:
            Optionally leave one user's rows out, so the detector used for a
            given user was trained only on *other* users' data (the paper's
            user-agnostic protocol).

        Returns
        -------
        BaseClassifier
            The fitted detector (also retained for
            :meth:`download_context_detector`).

        Raises
        ------
        ValueError
            If the matrix carries no context labels, or no rows remain
            after the exclusion.
        """
        scaler, detector = fit_context_detector(
            matrix, exclude_user=exclude_user, classifier=self.context_detector_factory()
        )
        self._context_detector = detector
        self._context_scaler = scaler
        return detector

    def install_context_detector(
        self, scaler: StandardScaler, classifier: BaseClassifier
    ) -> None:
        """Adopt an externally trained ``(scaler, classifier)`` detector pair.

        Lets the service gateway train a detector through the paper-path
        :class:`~repro.core.context.ContextDetector` (or rehydrate one from
        the registry) and make this server serve exactly that model.

        Raises
        ------
        ValueError
            If either part is of the wrong type.
        """
        if not isinstance(scaler, StandardScaler):
            raise ValueError("scaler must be a fitted StandardScaler")
        if not isinstance(classifier, BaseClassifier):
            raise ValueError("classifier must be a fitted BaseClassifier")
        self._context_scaler = scaler
        self._context_detector = classifier

    def download_context_detector(self) -> tuple[StandardScaler, BaseClassifier]:
        """Return the trained context detector for deployment on a phone.

        Raises
        ------
        RuntimeError
            If no detector has been trained or installed yet.
        """
        if self._context_detector is None or self._context_scaler is None:
            raise RuntimeError("the context detector has not been trained yet")
        return self._context_scaler, self._context_detector

    # ------------------------------------------------------------------ #
    # authentication models (per user, per context)
    # ------------------------------------------------------------------ #

    def train_authentication_models(
        self,
        user_id: str,
        contexts: tuple[CoarseContext, ...] = tuple(CoarseContext),
    ) -> TrainedModelBundle:
        """Train (or retrain) the per-context models for *user_id*.

        The legitimate user's windows are the positive class; a subsample of
        every other enrolled pseudonym's windows forms the negative class.

        Raises
        ------
        ValueError
            If the user has no stored data for a requested context, or no
            other users are enrolled to provide negative examples.
        """
        pseudonym = self._pseudonym(user_id)
        if pseudonym not in self.store:
            raise ValueError(f"user {user_id!r} has no uploaded feature data")
        if len(self.store.users()) < 2:
            raise ValueError("cannot train: no other users enrolled to provide negatives")
        models: dict[CoarseContext, ContextModel] = {}
        feature_names = self.store.feature_names
        previous_round = self._training_rounds.get(pseudonym, 0)
        if self.registry is not None:
            # After a restart the in-memory counter starts over while the
            # registry may already hold persisted versions; resume above the
            # highest published one so publish() never collides.
            published = self.registry.versions(user_id)
            if published:
                previous_round = max(previous_round, published[-1])
        round_number = previous_round + 1
        for context in contexts:
            positive = self.store.rows_for(pseudonym, context.value)
            if len(positive) < MIN_WINDOWS_PER_CONTEXT:
                raise ValueError(
                    f"user {user_id!r} has only {len(positive)} windows under "
                    f"context {context.value!r}; need at least "
                    f"{MIN_WINDOWS_PER_CONTEXT}"
                )
            rng = derive_rng(self._seed, "negative-pool", pseudonym, context.value, round_number)
            negative = self.store.sample_negatives(
                pseudonym, context.value, self.max_other_users_windows, rng
            )
            if len(negative) == 0:
                raise ValueError(
                    f"no other-user data available under context {context.value!r}"
                )
            X = np.vstack([positive, negative])
            y = np.array([LEGITIMATE_LABEL] * len(positive) + [OTHER_LABEL] * len(negative))
            scaler = StandardScaler().fit(X)
            classifier = clone(self.classifier_factory())
            classifier.fit(scaler.transform(X), y)
            models[context] = ContextModel(
                context=context,
                scaler=scaler,
                classifier=classifier,
                n_training_windows=len(X),
            )
        self._training_rounds[pseudonym] = round_number
        bundle = TrainedModelBundle(
            user_id=user_id,
            feature_names=feature_names,
            models=models,
            version=round_number,
        )
        if self.registry is not None:
            self.registry.publish(bundle)
        return bundle

    def retrain(self, user_id: str, new_data: FeatureMatrix) -> TrainedModelBundle:
        """Accept fresh feature vectors after behavioural drift and retrain."""
        self.upload_features(user_id, new_data)
        return self.train_authentication_models(user_id)
