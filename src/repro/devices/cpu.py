"""CPU / memory / timing cost model for the on-phone testing module.

Section V-H reports: training time 0.065 s, testing time 18 ms, context
detection < 3 ms, total context-detection-plus-authentication < 21 ms, CPU
utilisation ~5 % (never above 6 %) and ~3 MB of memory.  The model derives
these quantities from first principles — operation counts of the KRR solve
(O(M^2.373) with the identity kernel versus O(N^2.373) for the dual) and of
per-window feature extraction — calibrated to land in the paper's reported
range on comparable problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

#: Exponent of the matrix-inversion cost used by the paper (Section V-H1).
INVERSION_EXPONENT = 2.373


@dataclass(frozen=True)
class OverheadReport:
    """Predicted resource usage of the deployed testing module.

    Attributes
    ----------
    training_time_s:
        Time for one (cloud-side) KRR model fit.
    testing_time_ms:
        Time for one authentication decision (feature dot product).
    context_detection_time_ms:
        Time for one random-forest context classification.
    total_decision_time_ms:
        Context detection followed by authentication.
    cpu_utilization_percent:
        Average CPU share of the background service.
    memory_mb:
        Resident memory of the testing module.
    """

    training_time_s: float
    testing_time_ms: float
    context_detection_time_ms: float
    total_decision_time_ms: float
    cpu_utilization_percent: float
    memory_mb: float


class ComputeCostModel:
    """Analytic cost model of the SmarterYou testing and training modules.

    Parameters
    ----------
    effective_gflops:
        Sustained floating-point rate assumed for the phone-class core.
    cost_per_flop_overhead:
        Multiplier capturing interpreter / framework overhead above raw FLOPs.
    sampling_rate_hz:
        Sensor sampling rate (drives the steady-state CPU share).
    """

    def __init__(
        self,
        effective_gflops: float = 0.6,
        cost_per_flop_overhead: float = 110.0,
        sampling_rate_hz: float = 50.0,
    ) -> None:
        check_positive(effective_gflops, "effective_gflops")
        check_positive(cost_per_flop_overhead, "cost_per_flop_overhead")
        check_positive(sampling_rate_hz, "sampling_rate_hz")
        self.effective_gflops = effective_gflops
        self.cost_per_flop_overhead = cost_per_flop_overhead
        self.sampling_rate_hz = sampling_rate_hz

    # ------------------------------------------------------------------ #

    def _seconds_for_flops(self, flops: float) -> float:
        return flops * self.cost_per_flop_overhead / (self.effective_gflops * 1e9)

    def krr_training_flops(self, n_samples: int, n_features: int, use_primal: bool = True) -> float:
        """Operation count of solving Eq. 7 (primal) or Eq. 6 (dual)."""
        if n_samples < 1 or n_features < 1:
            raise ValueError("n_samples and n_features must be >= 1")
        inversion_dim = n_features if use_primal else n_samples
        gram_cost = n_samples * n_features * inversion_dim
        inversion_cost = float(inversion_dim) ** INVERSION_EXPONENT
        return gram_cost + inversion_cost

    def training_time_s(self, n_samples: int = 720, n_features: int = 28, use_primal: bool = True) -> float:
        """Wall-clock estimate of one model (re)training."""
        return self._seconds_for_flops(
            self.krr_training_flops(n_samples, n_features, use_primal=use_primal)
        )

    def testing_time_ms(self, n_features: int = 28, window_seconds: float = 6.0) -> float:
        """Wall-clock estimate of one authentication decision.

        Includes per-window feature extraction (FFT plus statistics over the
        window's samples for each of the four sensor streams) and the
        classifier dot product.
        """
        check_positive(window_seconds, "window_seconds")
        samples_per_window = int(window_seconds * self.sampling_rate_hz)
        fft_cost = 4 * 5.0 * samples_per_window * max(np.log2(max(samples_per_window, 2)), 1.0)
        statistics_cost = 4 * 8.0 * samples_per_window
        classification_cost = 2.0 * n_features
        return 1e3 * self._seconds_for_flops(fft_cost + statistics_cost + classification_cost)

    def context_detection_time_ms(self, n_trees: int = 50, max_depth: int = 12) -> float:
        """Wall-clock estimate of one random-forest context classification."""
        if n_trees < 1 or max_depth < 1:
            raise ValueError("n_trees and max_depth must be >= 1")
        comparisons = n_trees * max_depth
        return 1e3 * self._seconds_for_flops(float(comparisons) * 12.0)

    def cpu_utilization_percent(self, window_seconds: float = 6.0) -> float:
        """Average CPU share of continuous sampling plus periodic decisions.

        Sampling dominates: every sensor event wakes the service, so the share
        scales with the sampling rate, as the paper notes.
        """
        per_sample_us = 230.0
        sampling_share = self.sampling_rate_hz * per_sample_us * 1e-6
        decision_share = (
            (self.testing_time_ms() + self.context_detection_time_ms()) / 1e3
        ) / window_seconds
        return 100.0 * (sampling_share + decision_share)

    def memory_mb(self, n_features: int = 28, buffer_seconds: float = 12.0) -> float:
        """Resident memory: sample buffers, model parameters and code pages."""
        samples_buffered = self.sampling_rate_hz * buffer_seconds * 4 * 3  # 4 streams, 3 axes
        buffer_mb = samples_buffered * 8 / 1e6
        model_mb = (2 * n_features + 50 * 2**12) * 8 / 1e6  # KRR weights + forest nodes
        code_mb = 2.2
        return buffer_mb + model_mb + code_mb

    def report(self, n_samples: int = 720, n_features: int = 28) -> OverheadReport:
        """Full overhead report on the paper's operating point."""
        testing = self.testing_time_ms(n_features=n_features)
        context = self.context_detection_time_ms()
        return OverheadReport(
            training_time_s=self.training_time_s(n_samples, n_features),
            testing_time_ms=testing,
            context_detection_time_ms=context,
            total_decision_time_ms=testing + context,
            cpu_utilization_percent=self.cpu_utilization_percent(),
            memory_mb=self.memory_mb(n_features=n_features),
        )
