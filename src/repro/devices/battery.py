"""Battery-consumption model reproducing the four scenarios of Table VIII.

The paper measures the battery level drop over 12 hours with the phone locked
(scenarios 1–2) and over one hour of periodic use (scenarios 3–4), with
SmarterYou off or on.  The model decomposes the drain into baseline idle
draw, screen/interactive draw and the SmarterYou-specific components
(continuous 50 Hz sensor sampling, feature extraction, classification and the
Bluetooth listener), each expressed as an average current in milliamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import check_in_range, check_positive


class PowerScenario(Enum):
    """The four measurement scenarios of Table VIII."""

    LOCKED_SMARTERYOU_OFF = "phone locked, SmarterYou off"
    LOCKED_SMARTERYOU_ON = "phone locked, SmarterYou on"
    ACTIVE_SMARTERYOU_OFF = "phone unlocked, SmarterYou off"
    ACTIVE_SMARTERYOU_ON = "phone unlocked, SmarterYou on"

    @property
    def smarteryou_running(self) -> bool:
        return self in (
            PowerScenario.LOCKED_SMARTERYOU_ON,
            PowerScenario.ACTIVE_SMARTERYOU_ON,
        )

    @property
    def phone_in_use(self) -> bool:
        return self in (
            PowerScenario.ACTIVE_SMARTERYOU_OFF,
            PowerScenario.ACTIVE_SMARTERYOU_ON,
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of simulating one power scenario.

    Attributes
    ----------
    scenario:
        Which scenario was simulated.
    duration_hours:
        Simulated wall-clock time.
    consumed_mah:
        Charge drawn from the battery.
    consumed_percent:
        The same drain as a percentage of battery capacity — the number
        reported in Table VIII.
    """

    scenario: PowerScenario
    duration_hours: float
    consumed_mah: float
    consumed_percent: float


class BatteryModel:
    """Average-current battery model for the smartphone.

    Parameters
    ----------
    capacity_mah:
        Battery capacity (Nexus 5: 2300 mAh).
    idle_current_ma:
        Baseline draw with the screen off (radios idling, OS housekeeping).
    active_current_ma:
        Additional draw while the user actively uses the phone (screen on at
        interactive brightness, touch input, SoC on the interactive governor).
    sensor_sampling_current_ma:
        Extra draw of keeping the accelerometer + gyroscope sampling at the
        given rate and delivering events to the background service.
    processing_current_ma:
        Extra draw of feature extraction + context detection + classification
        amortised over time (the computation itself is milliseconds per 6 s
        window, so this is small).
    bluetooth_current_ma:
        Extra draw of the Bluetooth listener receiving the watch stream.
    interactive_overhead_current_ma:
        Additional draw of the SmarterYou service while the phone is actively
        used: sensor batching is disabled so every 50 Hz event wakes the
        service, decisions run at full rate and the CPU cannot enter deep
        sleep between screen interactions.  This is what makes the paper's
        one-hour active overhead (+2.4 %) much larger than the amortised idle
        draw would suggest.
    sampling_rate_hz:
        Sensor sampling rate; sampling cost scales linearly with it, matching
        the paper's remark that CPU utilisation scales with the sampling rate.
    """

    def __init__(
        self,
        capacity_mah: float = 2300.0,
        idle_current_ma: float = 5.2,
        active_current_ma: float = 230.0,
        sensor_sampling_current_ma: float = 3.2,
        processing_current_ma: float = 0.5,
        bluetooth_current_ma: float = 0.9,
        interactive_overhead_current_ma: float = 105.0,
        sampling_rate_hz: float = 50.0,
    ) -> None:
        check_positive(capacity_mah, "capacity_mah")
        for name, value in (
            ("idle_current_ma", idle_current_ma),
            ("active_current_ma", active_current_ma),
            ("sensor_sampling_current_ma", sensor_sampling_current_ma),
            ("processing_current_ma", processing_current_ma),
            ("bluetooth_current_ma", bluetooth_current_ma),
            ("interactive_overhead_current_ma", interactive_overhead_current_ma),
        ):
            check_positive(value, name, strict=False)
        check_positive(sampling_rate_hz, "sampling_rate_hz")
        self.capacity_mah = capacity_mah
        self.idle_current_ma = idle_current_ma
        self.active_current_ma = active_current_ma
        self.sensor_sampling_current_ma = sensor_sampling_current_ma
        self.processing_current_ma = processing_current_ma
        self.bluetooth_current_ma = bluetooth_current_ma
        self.interactive_overhead_current_ma = interactive_overhead_current_ma
        self.sampling_rate_hz = sampling_rate_hz

    def smarteryou_current_ma(self) -> float:
        """Average extra current drawn by the SmarterYou background service."""
        sampling = self.sensor_sampling_current_ma * (self.sampling_rate_hz / 50.0)
        return sampling + self.processing_current_ma + self.bluetooth_current_ma

    def average_current_ma(self, scenario: PowerScenario, duty_cycle: float = 0.5) -> float:
        """Average current for a scenario.

        *duty_cycle* is the fraction of time the phone is actively used in the
        "unlocked" scenarios (the paper alternates five minutes of use and five
        minutes idle, i.e. 0.5).
        """
        check_in_range(duty_cycle, "duty_cycle", 0.0, 1.0)
        current = self.idle_current_ma
        if scenario.phone_in_use:
            current += duty_cycle * self.active_current_ma
        if scenario.smarteryou_running:
            current += self.smarteryou_current_ma()
            if scenario.phone_in_use:
                current += duty_cycle * self.interactive_overhead_current_ma
        return current

    def simulate(
        self, scenario: PowerScenario, duration_hours: float, duty_cycle: float = 0.5
    ) -> ScenarioResult:
        """Simulate a scenario for *duration_hours* and report the drain."""
        check_positive(duration_hours, "duration_hours")
        current = self.average_current_ma(scenario, duty_cycle=duty_cycle)
        consumed = current * duration_hours
        return ScenarioResult(
            scenario=scenario,
            duration_hours=duration_hours,
            consumed_mah=consumed,
            consumed_percent=100.0 * consumed / self.capacity_mah,
        )

    def table_viii(self) -> dict[PowerScenario, ScenarioResult]:
        """Reproduce Table VIII: 12 h for the locked scenarios, 1 h for active."""
        durations = {
            PowerScenario.LOCKED_SMARTERYOU_OFF: 12.0,
            PowerScenario.LOCKED_SMARTERYOU_ON: 12.0,
            PowerScenario.ACTIVE_SMARTERYOU_OFF: 1.0,
            PowerScenario.ACTIVE_SMARTERYOU_ON: 1.0,
        }
        return {
            scenario: self.simulate(scenario, duration_hours=duration)
            for scenario, duration in durations.items()
        }
