"""Device substrate: phones, watches, links, the cloud server and cost models.

The paper's deployment consists of a smartphone running the testing module, a
smartwatch streaming auxiliary sensor data over Bluetooth, and a cloud
authentication server hosting the training module (Figure 1), plus the
overhead study of Section V-H.  This package models those pieces so the
end-to-end system — including battery/CPU overhead accounting and the
enrolment/retraining round trips — can be exercised entirely in simulation.
"""

from repro.devices.device import Device, DeviceSpec
from repro.devices.smartphone import Smartphone
from repro.devices.smartwatch import Smartwatch
from repro.devices.bluetooth import BluetoothLink, LinkStats
from repro.devices.secure_channel import SecureChannel, SecureMessage, IntegrityError
from repro.devices.battery import BatteryModel, PowerScenario, ScenarioResult
from repro.devices.cpu import ComputeCostModel, OverheadReport
from repro.devices.cloud import AuthenticationServer, TrainedModelBundle

__all__ = [
    "Device",
    "DeviceSpec",
    "Smartphone",
    "Smartwatch",
    "BluetoothLink",
    "LinkStats",
    "SecureChannel",
    "SecureMessage",
    "IntegrityError",
    "BatteryModel",
    "PowerScenario",
    "ScenarioResult",
    "ComputeCostModel",
    "OverheadReport",
    "AuthenticationServer",
    "TrainedModelBundle",
]
