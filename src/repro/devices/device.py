"""Base device abstraction shared by the smartphone and smartwatch models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sensors.behavior import BehaviorProfile
from repro.sensors.generators import SensorStreamGenerator
from repro.sensors.types import (
    DEFAULT_SAMPLING_RATE_HZ,
    Context,
    DeviceType,
    MultiSensorRecording,
    SensorType,
)
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a device.

    Attributes
    ----------
    model_name:
        Marketing name (e.g. ``"Nexus 5"``); informational only.
    sensors:
        Sensors physically present on the device.
    sampling_rate:
        Sensor sampling rate in Hz.
    battery_capacity_mah:
        Battery capacity, consumed by the :class:`~repro.devices.battery.BatteryModel`.
    """

    model_name: str
    sensors: tuple[SensorType, ...]
    sampling_rate: float = DEFAULT_SAMPLING_RATE_HZ
    battery_capacity_mah: float = 2300.0


class Device:
    """A sensor-bearing device worn or carried by one user.

    The device binds a :class:`DeviceSpec` to a user's behaviour profile and
    exposes :meth:`record`, which produces the multi-sensor recording that the
    rest of the pipeline consumes.  Swapping the profile (``assign_user``)
    models the device changing hands — e.g. being picked up by an attacker.
    """

    device_type: DeviceType = DeviceType.SMARTPHONE

    def __init__(
        self,
        spec: DeviceSpec,
        profile: BehaviorProfile,
        seed: RandomState = None,
    ) -> None:
        check_positive(spec.sampling_rate, "spec.sampling_rate")
        self.spec = spec
        self._seed = seed
        self._generator = SensorStreamGenerator(
            profile, sampling_rate=spec.sampling_rate, seed=seed
        )

    @property
    def profile(self) -> BehaviorProfile:
        """Behaviour profile of whoever currently holds the device."""
        return self._generator.profile

    @property
    def current_user_id(self) -> str:
        """Identifier of the current holder."""
        return self.profile.user_id

    def assign_user(self, profile: BehaviorProfile) -> None:
        """Hand the device to a different user (e.g. an attacker)."""
        self._generator = SensorStreamGenerator(
            profile, sampling_rate=self.spec.sampling_rate, seed=self._seed
        )

    def record(
        self,
        context: Context,
        duration: float,
        sensors: tuple[SensorType, ...] | None = None,
    ) -> MultiSensorRecording:
        """Record *duration* seconds of sensor data in the given context."""
        requested = sensors if sensors is not None else self.spec.sensors
        unsupported = [sensor for sensor in requested if sensor not in self.spec.sensors]
        if unsupported:
            raise ValueError(
                f"{self.spec.model_name} lacks sensors: {[s.value for s in unsupported]}"
            )
        return self._generator.generate(
            self.device_type, context, duration, sensors=tuple(requested)
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(model={self.spec.model_name!r}, "
            f"user={self.current_user_id!r})"
        )
