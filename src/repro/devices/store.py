"""Sharded, capacity-bounded storage for per-(user, context) feature windows.

This module lives in :mod:`repro.devices` because the store is the cloud
server's storage substrate: :class:`~repro.devices.cloud.AuthenticationServer`
owns one, and nothing here depends on the service layer above.  The
:mod:`repro.service` package re-exports these names for compatibility.

The seed's :class:`~repro.devices.cloud.AuthenticationServer` kept every
uploaded :class:`~repro.features.vector.FeatureMatrix` in a Python
dict-of-lists, so training had to re-mask and re-stack raw matrices on every
run and memory grew without bound.  The :class:`FeatureStore` replaces that
design with preallocated NumPy ring buffers:

* one :class:`RingBuffer` per ``(user, context)`` pair, appending rows in
  amortised O(rows) and evicting the oldest windows once the configured
  capacity is reached (recent behaviour is what matters for authentication);
* user keys are hashed onto a fixed number of shards, which keeps per-shard
  dictionaries small and maps directly onto a multi-process deployment where
  each shard lives on a different node;
* a single feature schema is enforced across the whole store, so a
  mismatched upload fails fast instead of poisoning the training pool.

Negative-pool sampling (the "all other users" class of the paper's training
protocol) is served without materialising the full pool: the store draws row
indices over the virtual concatenation and gathers only the selected rows.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.features.vector import FeatureMatrix
from repro.utils.rng import RandomState, ensure_rng

#: Buffer key used for rows uploaded without per-row context labels.  Such
#: rows count towards every context query, mirroring the seed server's
#: behaviour for unlabelled matrices.
ANY_CONTEXT = "*"


class RingBuffer:
    """Fixed-capacity row buffer backed by one lazily grown array.

    Rows are appended in arrival order; once *capacity* rows are held, each
    new row overwrites the oldest one.  :meth:`view` always returns rows in
    chronological order.  Storage grows geometrically up to *capacity* so a
    generous capacity bound costs nothing until windows actually arrive.
    """

    def __init__(self, capacity: int, n_features: int, dtype: type = float) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.capacity = int(capacity)
        self.n_features = int(n_features)
        self._dtype = dtype
        self._data = np.empty((0, self.n_features), dtype=dtype)
        self._start = 0
        self._size = 0
        self.total_appended = 0
        self.evicted = 0

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size == self.capacity

    @property
    def allocated(self) -> int:
        """Rows of backing storage currently committed (<= capacity)."""
        return len(self._data)

    def _grow_to(self, needed: int) -> None:
        """Grow the backing array; only called before any wraparound, so the
        stored rows are the contiguous prefix ``[0, size)``."""
        assert self._start == 0
        new_allocation = min(self.capacity, max(2 * len(self._data), needed, 8))
        grown = np.empty((new_allocation, self.n_features), dtype=self._dtype)
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, rows: np.ndarray) -> int:
        """Append *rows* (2-D, chronological order); returns rows evicted."""
        rows = np.asarray(rows, dtype=self._dtype)
        if rows.ndim != 2 or rows.shape[1] != self.n_features:
            raise ValueError(
                f"rows must have shape (n, {self.n_features}), got {rows.shape}"
            )
        n = len(rows)
        if n == 0:
            return 0
        self.total_appended += n
        if n >= self.capacity:
            # Only the newest `capacity` rows survive; everything stored
            # before, plus the overflow of this batch, is evicted.
            if len(self._data) < self.capacity:
                self._data = np.empty(
                    (self.capacity, self.n_features), dtype=self._dtype
                )
            evicted_now = self._size + (n - self.capacity)
            self._data[:] = rows[n - self.capacity :]
            self._start = 0
            self._size = self.capacity
            self.evicted += evicted_now
            return evicted_now
        if self._size + n > len(self._data) and len(self._data) < self.capacity:
            self._grow_to(self._size + n)
        # From here the ring arithmetic runs over the allocated extent:
        # either the batch fits without wrapping, or the buffer is fully
        # allocated (allocated == capacity) and wrap/eviction applies.
        allocated = len(self._data)
        end = (self._start + self._size) % allocated
        first = min(n, allocated - end)
        self._data[end : end + first] = rows[:first]
        if first < n:
            self._data[: n - first] = rows[first:]
        overflow = max(0, self._size + n - allocated)
        if overflow:
            self._start = (self._start + overflow) % allocated
            self.evicted += overflow
        self._size = min(allocated, self._size + n)
        return overflow

    def view(self) -> np.ndarray:
        """Stored rows in chronological order (read-only; no copy unless wrapped).

        The unwrapped case aliases the live buffer: a later :meth:`append`
        may overwrite it in place.  Callers holding rows across writes must
        copy (the :class:`FeatureStore` read API does this for you).
        """
        allocated = len(self._data)
        if self._size == 0:
            out = self._data[:0]
        elif self._start + self._size <= allocated:
            out = self._data[self._start : self._start + self._size]
        else:
            wrap = (self._start + self._size) % allocated
            out = np.concatenate([self._data[self._start :], self._data[:wrap]])
        out = out.view()
        out.flags.writeable = False
        return out


@dataclass(frozen=True)
class StoreStats:
    """Aggregate statistics of a :class:`FeatureStore`."""

    n_users: int
    n_windows: int
    n_buffers: int
    n_features: int
    total_appended: int
    total_evicted: int
    windows_per_shard: tuple[int, ...]

    @property
    def capacity_pressure(self) -> float:
        """Fraction of all appended windows that have been evicted."""
        if self.total_appended == 0:
            return 0.0
        return self.total_evicted / self.total_appended


class _Shard:
    """One shard: a dictionary of (user, context) ring buffers."""

    __slots__ = ("buffers",)

    def __init__(self) -> None:
        self.buffers: dict[tuple[str, str], RingBuffer] = {}

    def window_count(self) -> int:
        return sum(len(buffer) for buffer in self.buffers.values())


class FeatureStore:
    """Sharded per-(user, context) window storage with a fixed schema.

    Parameters
    ----------
    n_shards:
        Number of hash shards user keys are distributed over.
    capacity_per_context:
        Maximum windows retained per ``(user, context)`` ring buffer; older
        windows are evicted first.
    feature_names:
        Optional schema fixed at construction; otherwise the first appended
        matrix defines it.
    """

    def __init__(
        self,
        n_shards: int = 8,
        capacity_per_context: int = 65536,
        feature_names: Iterable[str] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if capacity_per_context < 1:
            raise ValueError(
                f"capacity_per_context must be >= 1, got {capacity_per_context}"
            )
        self.n_shards = int(n_shards)
        self.capacity_per_context = int(capacity_per_context)
        self._feature_names: list[str] | None = (
            list(feature_names) if feature_names is not None else None
        )
        self._shards = [_Shard() for _ in range(self.n_shards)]
        # Maps every known user to its shard index, in insertion order; the
        # training protocol iterates "all other users" in enrolment order.
        self._users: dict[str, int] = {}
        # Per-user index of that user's ring buffers (references into the
        # shards) and live per-context window totals, so metadata queries
        # (contexts_for, negative_pool_size) cost O(1)-ish instead of
        # scanning the population on every request.
        self._by_user: dict[str, dict[str, RingBuffer]] = {}
        self._context_counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # schema and sharding
    # ------------------------------------------------------------------ #

    @property
    def feature_names(self) -> list[str]:
        """The store-wide feature schema (empty before the first append)."""
        return list(self._feature_names) if self._feature_names is not None else []

    @property
    def n_features(self) -> int:
        return len(self._feature_names) if self._feature_names is not None else 0

    def shard_index(self, user_key: str) -> int:
        """Stable shard assignment of *user_key*."""
        digest = hashlib.sha256(user_key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little") % self.n_shards

    def _check_schema(self, feature_names: list[str]) -> None:
        if self._feature_names is None:
            self._feature_names = list(feature_names)
            return
        if list(feature_names) != self._feature_names:
            raise ValueError(
                "feature_names mismatch: the store was initialised with "
                f"{len(self._feature_names)} columns {self._feature_names!r} but "
                f"this upload carries {len(feature_names)} columns {feature_names!r}"
            )

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def append(self, user_key: str, matrix: FeatureMatrix) -> int:
        """Store every row of *matrix* under *user_key*; returns rows stored.

        Rows carrying per-row context labels go to that context's ring
        buffer; matrices without labels are stored under :data:`ANY_CONTEXT`
        and count towards every context query.

        Raises
        ------
        ValueError
            If the matrix is empty or its ``feature_names`` do not match the
            store schema.
        """
        if len(matrix) == 0:
            raise ValueError("refusing to store an empty feature matrix")
        self._check_schema(matrix.feature_names)
        shard_index = self._users.get(user_key)
        if shard_index is None:
            shard_index = self.shard_index(user_key)
            self._users[user_key] = shard_index
        shard = self._shards[shard_index]
        if matrix.contexts:
            context_labels = np.asarray(matrix.contexts, dtype=object)
            for context in dict.fromkeys(matrix.contexts):  # preserves order
                mask = context_labels == context
                self._append_rows(shard, user_key, str(context), matrix.values[mask])
        else:
            self._append_rows(shard, user_key, ANY_CONTEXT, matrix.values)
        return len(matrix)

    def _append_rows(
        self, shard: _Shard, user_key: str, context: str, rows: np.ndarray
    ) -> None:
        buffer = self._buffer_for(shard, user_key, context)
        evicted = buffer.append(rows)
        self._context_counts[context] = (
            self._context_counts.get(context, 0) + len(rows) - evicted
        )

    def _buffer_for(self, shard: _Shard, user_key: str, context: str) -> RingBuffer:
        key = (user_key, context)
        buffer = shard.buffers.get(key)
        if buffer is None:
            assert self._feature_names is not None
            buffer = RingBuffer(self.capacity_per_context, len(self._feature_names))
            shard.buffers[key] = buffer
            self._by_user.setdefault(user_key, {})[context] = buffer
        return buffer

    def drop_user(self, user_key: str) -> int:
        """Remove every window of *user_key*; returns windows dropped."""
        shard_index = self._users.pop(user_key, None)
        if shard_index is None:
            return 0
        shard = self._shards[shard_index]
        dropped = 0
        for context, buffer in self._by_user.pop(user_key, {}).items():
            dropped += len(buffer)
            self._context_counts[context] -= len(buffer)
            del shard.buffers[(user_key, context)]
        return dropped

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def users(self) -> list[str]:
        """Every stored user key, in first-upload order."""
        return list(self._users)

    def __contains__(self, user_key: str) -> bool:
        return user_key in self._users

    def contexts_for(self, user_key: str) -> list[str]:
        """Context labels under which *user_key* has stored windows."""
        return [
            context
            for context, buffer in self._by_user.get(user_key, {}).items()
            if len(buffer) and context != ANY_CONTEXT
        ]

    def _user_buffers(self, user_key: str, context: str | None) -> list[RingBuffer]:
        """Buffers contributing to a (user, context) query, oldest-first.

        ``context=None`` selects every buffer of the user; a concrete context
        selects that context's buffer plus the unlabelled wildcard buffer.
        """
        index = self._by_user.get(user_key)
        if not index:
            return []
        if context is None:
            return [buffer for buffer in index.values() if len(buffer)]
        contexts = [context]
        if context != ANY_CONTEXT:
            contexts.append(ANY_CONTEXT)
        buffers = []
        for key in contexts:
            buffer = index.get(key)
            if buffer is not None and len(buffer):
                buffers.append(buffer)
        return buffers

    def unlabelled_count(self, user_key: str) -> int:
        """Windows stored without per-row context labels (wildcard rows)."""
        return sum(
            len(buffer) for buffer in self._user_buffers(user_key, ANY_CONTEXT)
        )

    def rows_for(self, user_key: str, context: str | None = None) -> np.ndarray:
        """All stored rows of one user (optionally restricted to a context).

        The result is a snapshot copy: later appends (which overwrite ring
        slots in place) never mutate previously returned arrays.
        """
        parts = [buffer.view() for buffer in self._user_buffers(user_key, context)]
        if not parts:
            return np.empty((0, self.n_features))
        if len(parts) == 1:
            return parts[0].copy()
        return np.vstack(parts)

    def window_count(self, user_key: str, context: str | None = None) -> int:
        """Stored window count for one user (optionally one context)."""
        return sum(len(buffer) for buffer in self._user_buffers(user_key, context))

    def total_windows(self) -> int:
        """Stored window count across every user and context."""
        return sum(shard.window_count() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # negative-pool sampling
    # ------------------------------------------------------------------ #

    def negative_pool_size(self, user_key: str, context: str | None = None) -> int:
        """Windows stored for every user except *user_key* under *context*.

        Served from the live per-context counters — O(1) in the number of
        users, so gateways can check it on every request.
        """
        if context is None:
            pool = sum(self._context_counts.values())
        elif context == ANY_CONTEXT:
            pool = self._context_counts.get(ANY_CONTEXT, 0)
        else:
            pool = self._context_counts.get(context, 0) + self._context_counts.get(
                ANY_CONTEXT, 0
            )
        return pool - self.window_count(user_key, context)

    def sample_negatives(
        self,
        user_key: str,
        context: str | None,
        max_rows: int,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Rows of every user except *user_key* under *context*, capped.

        When the virtual pool holds at most *max_rows* rows the whole pool is
        returned (in user-enrolment order, as the seed server did).  A larger
        pool is subsampled uniformly without replacement — but without ever
        materialising it: indices are drawn over the virtual concatenation
        and only the selected rows are gathered.
        """
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        parts: list[np.ndarray] = []
        for other in self._users:
            if other == user_key:
                continue
            for buffer in self._user_buffers(other, context):
                parts.append(buffer.view())
        if not parts:
            return np.empty((0, self.n_features))
        lengths = np.array([len(part) for part in parts])
        total = int(lengths.sum())
        if total <= max_rows:
            # Copy so later in-place ring overwrites cannot mutate the pool.
            return parts[0].copy() if len(parts) == 1 else np.vstack(parts)
        generator = ensure_rng(rng)
        chosen = generator.choice(total, size=max_rows, replace=False)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        part_of = np.searchsorted(offsets, chosen, side="right") - 1
        local = chosen - offsets[part_of]
        gathered = np.empty((max_rows, self.n_features))
        for part_index in np.unique(part_of):
            mask = part_of == part_index
            gathered[mask] = parts[part_index][local[mask]]
        return gathered

    # ------------------------------------------------------------------ #

    def stats(self) -> StoreStats:
        """Aggregate statistics across every shard."""
        n_buffers = sum(len(shard.buffers) for shard in self._shards)
        total_appended = sum(
            buffer.total_appended
            for shard in self._shards
            for buffer in shard.buffers.values()
        )
        total_evicted = sum(
            buffer.evicted
            for shard in self._shards
            for buffer in shard.buffers.values()
        )
        return StoreStats(
            n_users=len(self._users),
            n_windows=self.total_windows(),
            n_buffers=n_buffers,
            n_features=self.n_features,
            total_appended=total_appended,
            total_evicted=total_evicted,
            windows_per_shard=tuple(shard.window_count() for shard in self._shards),
        )
