"""Physics-inspired generators turning behaviour profiles into sensor streams.

The generator composes, per context:

* **moving** — a quasi-periodic gait signal (fundamental plus two harmonics at
  the user's stride frequency, per-axis amplitude/phase, cycle-to-cycle
  cadence jitter) on the accelerometer, and the corresponding rotational
  motion on the gyroscope;
* **handheld static** — the user's physiological tremor plus sparse grip
  re-adjustment bursts;
* **on table** — only sensor noise and gravity (the device is at rest);
* **vehicle** — broadband low-frequency vibration plus occasional bumps,
  coupled through the user's ``vehicle_sensitivity``.

The smartwatch sees the same underlying body motion scaled by the user's
``arm_swing_gain`` and delayed by ``watch_phase_lag``, plus wrist-specific
micro-motion, which makes the two devices correlated only weakly at the
feature level (Table IV) while both remaining user-specific.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensors.behavior import BehaviorProfile
from repro.sensors.noise import default_environment_noise, default_motion_noise
from repro.sensors.types import (
    DEFAULT_SAMPLING_RATE_HZ,
    Context,
    DeviceType,
    MultiSensorRecording,
    SensorStream,
    SensorType,
)
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_positive

#: Standard gravity in m/s^2, used as the accelerometer baseline.
GRAVITY = 9.81


@dataclass(frozen=True)
class GenerationRequest:
    """Specification of one stream-generation call."""

    profile: BehaviorProfile
    device: DeviceType
    context: Context
    duration: float
    sampling_rate: float = DEFAULT_SAMPLING_RATE_HZ


@dataclass(frozen=True)
class SessionModifiers:
    """Session-to-session variability applied on top of the stable profile.

    Real users do not reproduce their behaviour exactly between sessions: they
    walk a little faster or slower, hold the phone at a slightly different
    angle, and find themselves in a different room, vehicle or lighting
    condition.  These modifiers are drawn once per recording session; they
    create the within-user variance that keeps authentication from being
    trivially perfect, and they dominate the environment-driven sensors
    (magnetometer / orientation / light), which is why those sensors carry so
    little identity information (Table II).
    """

    gait_amplitude_scale: float
    gait_frequency_scale: float
    tremor_scale: float
    hold_angle_offset: tuple[float, float]
    ambient_light_lux: float
    magnetic_field_ut: tuple[float, float, float]
    heading_rad: float
    orientation_reference_offset: tuple[float, float, float]


class SensorStreamGenerator:
    """Generates synthetic sensor streams for one user profile.

    Parameters
    ----------
    profile:
        The user's behavioural profile.
    sampling_rate:
        Sampling rate in Hz (the paper uses 50 Hz).
    seed:
        Seed or generator controlling all randomness of this generator.
    """

    def __init__(
        self,
        profile: BehaviorProfile,
        sampling_rate: float = DEFAULT_SAMPLING_RATE_HZ,
        seed: RandomState = None,
    ) -> None:
        self.profile = profile
        self.sampling_rate = check_positive(sampling_rate, "sampling_rate")
        self._seed = seed
        self._session_counter = 0
        # Set at the start of every generate() call; holds the session-level
        # variability applied to this recording.
        self._session: SessionModifiers | None = None

    def _draw_session_modifiers(self, rng: np.random.Generator) -> SessionModifiers:
        """Draw the session-to-session variability for one recording."""
        return SessionModifiers(
            gait_amplitude_scale=float(rng.lognormal(0.0, 0.18)),
            gait_frequency_scale=float(1.0 + rng.normal(0.0, 0.035)),
            tremor_scale=float(rng.lognormal(0.0, 0.2)),
            hold_angle_offset=(float(rng.normal(0.0, 0.12)), float(rng.normal(0.0, 0.12))),
            # Environmental conditions are properties of wherever the user
            # happens to be, so they are drawn from global (user-independent)
            # distributions per session.
            ambient_light_lux=float(rng.uniform(30.0, 900.0)),
            magnetic_field_ut=(
                float(rng.normal(20.0, 12.0)),
                float(rng.normal(5.0, 12.0)),
                float(rng.normal(-40.0, 12.0)),
            ),
            heading_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
            # The fused orientation estimate re-anchors against the (session-
            # specific) magnetic reference, so its zero point wanders far more
            # than the physical hold angle does.
            orientation_reference_offset=tuple(
                float(value) for value in rng.normal(0.0, 0.7, size=3)
            ),
        )

    @property
    def _current_session(self) -> SessionModifiers:
        if self._session is None:
            raise RuntimeError("session modifiers accessed outside generate()")
        return self._session

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def generate(
        self,
        device: DeviceType,
        context: Context,
        duration: float,
        sensors: tuple[SensorType, ...] = tuple(SensorType),
    ) -> MultiSensorRecording:
        """Generate a multi-sensor recording of *duration* seconds.

        Each call produces a new independent session (fresh random stream),
        while the underlying behavioural parameters stay fixed.
        """
        check_positive(duration, "duration")
        self._session_counter += 1
        rng = derive_rng(
            self._seed,
            "session",
            self.profile.user_id,
            device.value,
            context.value,
            self._session_counter,
        )
        self._session = self._draw_session_modifiers(rng)
        n_samples = max(1, int(round(duration * self.sampling_rate)))
        timestamps = np.arange(n_samples) / self.sampling_rate

        body_accel, body_gyro = self._body_motion(context, timestamps, rng)
        gain = self.profile.motion_gain(device)
        lag = self.profile.phase_lag(device)
        accel = self._device_view(body_accel, gain, lag, rng)
        gyro = self._device_view(body_gyro, gain, lag, rng)

        if device is DeviceType.SMARTWATCH:
            accel, gyro = self._add_wrist_motion(accel, gyro, context, timestamps, rng)

        accel = self._add_gravity(accel, context)

        streams: dict[SensorType, SensorStream] = {}
        noise = default_motion_noise(self.profile.sensor_noise)
        if SensorType.ACCELEROMETER in sensors:
            streams[SensorType.ACCELEROMETER] = self._stream(
                SensorType.ACCELEROMETER, device, timestamps,
                accel + noise.sample(n_samples, 3, rng),
            )
        if SensorType.GYROSCOPE in sensors:
            streams[SensorType.GYROSCOPE] = self._stream(
                SensorType.GYROSCOPE, device, timestamps,
                gyro + noise.sample(n_samples, 3, rng),
            )
        if SensorType.MAGNETOMETER in sensors:
            streams[SensorType.MAGNETOMETER] = self._stream(
                SensorType.MAGNETOMETER, device, timestamps,
                self._magnetometer(context, timestamps, rng),
            )
        if SensorType.ORIENTATION in sensors:
            streams[SensorType.ORIENTATION] = self._stream(
                SensorType.ORIENTATION, device, timestamps,
                self._orientation(context, gyro, timestamps, rng),
            )
        if SensorType.LIGHT in sensors:
            streams[SensorType.LIGHT] = self._stream(
                SensorType.LIGHT, device, timestamps,
                self._light(context, timestamps, rng),
            )
        return MultiSensorRecording(
            device=device,
            user_id=self.profile.user_id,
            context=context,
            streams=streams,
        )

    # ------------------------------------------------------------------ #
    # body-motion synthesis
    # ------------------------------------------------------------------ #

    def _body_motion(
        self, context: Context, timestamps: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Synthesize the gravity-free body acceleration and angular velocity."""
        if context is Context.MOVING:
            return self._gait_motion(timestamps, rng)
        if context is Context.HANDHELD_STATIC:
            return self._handheld_motion(timestamps, rng)
        if context is Context.ON_TABLE:
            n = len(timestamps)
            return np.zeros((n, 3)), np.zeros((n, 3))
        if context is Context.VEHICLE:
            return self._vehicle_motion(timestamps, rng)
        raise ValueError(f"unsupported context: {context}")

    def _gait_motion(
        self, timestamps: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Quasi-periodic walking signal with user-specific harmonics."""
        gait = self.profile.gait
        session = self._current_session
        n = len(timestamps)
        dt = 1.0 / self.sampling_rate
        # Instantaneous frequency with cadence jitter (random walk around f0),
        # further scaled by the session's pace.
        freq = gait.frequency_hz * session.gait_frequency_scale * (
            1.0 + gait.cadence_jitter * np.cumsum(rng.normal(0.0, dt, size=n))
        )
        phase = 2.0 * np.pi * np.cumsum(freq) * dt
        accel = np.zeros((n, 3))
        gyro = np.zeros((n, 3))
        h2, h3 = gait.harmonic_weights
        for axis in range(3):
            base = phase + gait.phase[axis]
            accel[:, axis] = gait.amplitude[axis] * session.gait_amplitude_scale * (
                np.sin(base) + h2 * np.sin(2.0 * base) + h3 * np.sin(3.0 * base)
            )
            gyro[:, axis] = gait.rotational_amplitude[axis] * session.gait_amplitude_scale * (
                np.sin(base + np.pi / 4.0) + h2 * np.sin(2.0 * base + np.pi / 6.0)
            )
        # Walking pace and vigour wax and wane slowly within a session, which
        # makes window-level energy statistics (var, range, max, peaks) move
        # together across windows, as in the paper's Table III.
        envelope = self._energy_envelope(timestamps, rng)
        accel *= envelope[:, np.newaxis]
        gyro *= envelope[:, np.newaxis]
        # Grip dynamics are still present while walking, at reduced amplitude.
        tremor_accel, tremor_gyro = self._tremor(timestamps, rng, scale=0.4)
        return accel + tremor_accel, gyro + tremor_gyro

    def _handheld_motion(
        self, timestamps: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stationary-use signal: tremor, breathing sway and grip adjustments."""
        n = len(timestamps)
        tremor_accel, tremor_gyro = self._tremor(timestamps, rng, scale=1.0)
        # Slow postural sway (breathing, small weight shifts) around 0.25 Hz.
        sway_phase = 2.0 * np.pi * 0.25 * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        sway = 0.05 * np.stack(
            [np.sin(sway_phase), np.sin(sway_phase * 1.3 + 1.0), np.cos(sway_phase)], axis=1
        )
        envelope = self._energy_envelope(timestamps, rng)
        accel = (tremor_accel + sway) * envelope[:, np.newaxis]
        gyro = (tremor_gyro + 0.2 * sway) * envelope[:, np.newaxis]
        accel += self._grip_adjustments(n, rng)
        return accel, gyro

    def _energy_envelope(self, timestamps: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Slow multiplicative modulation of motion energy within a session."""
        phase = 2.0 * np.pi * 0.02 * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        secondary = 2.0 * np.pi * 0.007 * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        return 1.0 + 0.18 * np.sin(phase) + 0.12 * np.sin(secondary)

    def _vehicle_motion(
        self, timestamps: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vehicle vibration: band-limited noise plus sparse bumps."""
        n = len(timestamps)
        sensitivity = self.profile.vehicle_sensitivity
        # Band-limited vibration: smooth white noise with a moving average.
        raw = rng.normal(0.0, 0.35 * sensitivity, size=(n + 10, 3))
        kernel = np.ones(10) / 10.0
        vibration = np.stack(
            [np.convolve(raw[:, axis], kernel, mode="valid")[:n] for axis in range(3)], axis=1
        )
        bumps = np.zeros((n, 3))
        n_bumps = rng.poisson(max(1.0, len(timestamps) / self.sampling_rate / 15.0))
        for _ in range(n_bumps):
            start = rng.integers(0, max(1, n - 25))
            length = int(rng.integers(10, 25))
            window = np.hanning(length)
            bumps[start : start + length, 1] += window * rng.uniform(0.5, 1.5) * sensitivity
        tremor_accel, tremor_gyro = self._tremor(timestamps, rng, scale=0.8)
        return vibration + bumps + tremor_accel, 0.3 * vibration + tremor_gyro

    def _tremor(
        self, timestamps: np.ndarray, rng: np.random.Generator, scale: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """User-specific physiological tremor on both motion sensors."""
        grip = self.profile.grip
        scale = scale * self._current_session.tremor_scale
        n = len(timestamps)
        phase = 2.0 * np.pi * grip.tremor_frequency_hz * timestamps
        offsets = rng.uniform(0.0, 2.0 * np.pi, size=3)
        accel = np.stack(
            [scale * grip.tremor_amplitude * np.sin(phase + offsets[axis]) for axis in range(3)],
            axis=1,
        )
        gyro = np.stack(
            [scale * grip.micro_rotation * np.sin(phase * 0.9 + offsets[axis]) for axis in range(3)],
            axis=1,
        )
        return accel, gyro

    def _grip_adjustments(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Sparse grip re-adjustment bursts (short damped oscillations)."""
        grip = self.profile.grip
        adjustments = np.zeros((n_samples, 3))
        expected = grip.adjustment_rate_hz * n_samples / self.sampling_rate
        n_events = rng.poisson(expected)
        for _ in range(n_events):
            start = int(rng.integers(0, max(1, n_samples - 20)))
            length = int(rng.integers(8, 20))
            t = np.arange(length)
            burst = np.exp(-t / 6.0) * np.sin(2.0 * np.pi * t / 7.0)
            axis = int(rng.integers(0, 3))
            adjustments[start : start + length, axis] += 0.4 * burst
        return adjustments

    # ------------------------------------------------------------------ #
    # device-specific shaping
    # ------------------------------------------------------------------ #

    def _device_view(
        self,
        body_signal: np.ndarray,
        gain: float,
        phase_lag: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Scale and delay the body motion as seen at the device's mount point."""
        delayed = body_signal
        if phase_lag > 0.0:
            lag_samples = int(round(phase_lag / (2.0 * np.pi) * self.sampling_rate))
            if lag_samples > 0:
                delayed = np.roll(body_signal, lag_samples, axis=0)
                delayed[:lag_samples] = body_signal[:lag_samples]
        return gain * delayed

    def _add_wrist_motion(
        self,
        accel: np.ndarray,
        gyro: np.ndarray,
        context: Context,
        timestamps: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Add wrist-specific micro-motion that the phone does not see.

        This independent component keeps phone/watch feature correlations weak
        (Table IV) even though both devices observe the same body motion.
        """
        n = len(timestamps)
        wrist_freq = 0.5 + 0.5 * self.profile.grip.adjustment_rate_hz
        phase = 2.0 * np.pi * wrist_freq * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        independent = rng.normal(0.0, 0.12, size=(n, 3))
        kernel = np.ones(5) / 5.0
        independent = np.stack(
            [np.convolve(independent[:, axis], kernel, mode="same") for axis in range(3)], axis=1
        )
        wrist_accel = 0.25 * np.stack(
            [np.sin(phase), np.sin(1.7 * phase + 0.4), np.cos(phase)], axis=1
        )
        wrist_gyro = 0.3 * independent
        scale = 1.0 if context is Context.MOVING else 0.6
        return accel + scale * (wrist_accel + independent), gyro + scale * wrist_gyro

    def _add_gravity(self, accel: np.ndarray, context: Context) -> np.ndarray:
        """Project gravity onto the device axes given the hold angle."""
        pitch, roll = self._session_hold_angle(context)
        gravity_vector = GRAVITY * np.array(
            [
                np.sin(roll) * np.cos(pitch),
                np.sin(pitch),
                np.cos(pitch) * np.cos(roll),
            ]
        )
        return accel + gravity_vector

    def _session_hold_angle(self, context: Context) -> tuple[float, float]:
        """The device tilt for this session: habitual angle plus session offset."""
        if context is Context.ON_TABLE:
            return 0.0, 0.0
        pitch, roll = self.profile.grip.hold_angle
        offset_pitch, offset_roll = self._current_session.hold_angle_offset
        return pitch + offset_pitch, roll + offset_roll

    # ------------------------------------------------------------------ #
    # environment-driven sensors
    # ------------------------------------------------------------------ #

    def _magnetometer(
        self, context: Context, timestamps: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Local field plus heavy environmental disturbance.

        The local field is a property of wherever the session takes place, so
        it comes from the session modifiers (user-independent) rather than
        from the behavioural profile.
        """
        env = self.profile.environment
        n = len(timestamps)
        base = np.asarray(self._current_session.magnetic_field_ut)
        noise = default_environment_noise(env.magnetic_noise_ut).sample(n, 3, rng)
        # Random building/vehicle disturbances shared across users' ranges.
        disturbance = rng.normal(0.0, 8.0, size=3)
        heading_phase = 2.0 * np.pi * 0.05 * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        heading = 5.0 * np.stack(
            [np.sin(heading_phase), np.cos(heading_phase), np.zeros(n)], axis=1
        )
        if context is Context.VEHICLE:
            disturbance = disturbance + rng.normal(0.0, 20.0, size=3)
        return base + disturbance + heading + noise

    def _orientation(
        self,
        context: Context,
        gyro: np.ndarray,
        timestamps: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Orientation angles: integrated gyro plus environment-driven heading."""
        dt = 1.0 / self.sampling_rate
        integrated = np.cumsum(gyro, axis=0) * dt
        pitch, roll = self._session_hold_angle(context)
        session = self._current_session
        base = (
            np.array([session.heading_rad, pitch, roll])
            + np.asarray(session.orientation_reference_offset)
        )
        wander = default_environment_noise(0.05).sample(len(timestamps), 3, rng)
        return base + 0.3 * integrated + wander

    def _light(
        self, context: Context, timestamps: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Ambient-light stream: level set by the surroundings, not the user."""
        n = len(timestamps)
        level = self._current_session.ambient_light_lux
        slow_phase = 2.0 * np.pi * 0.02 * timestamps + rng.uniform(0.0, 2.0 * np.pi)
        slow = 0.15 * level * np.sin(slow_phase)
        shadow_events = np.zeros(n)
        for _ in range(rng.poisson(max(1.0, n / self.sampling_rate / 30.0))):
            start = int(rng.integers(0, max(1, n - 50)))
            length = int(rng.integers(20, 50))
            shadow_events[start : start + length] -= level * rng.uniform(0.2, 0.6)
        lux = np.clip(level + slow + shadow_events + rng.normal(0.0, 3.0, size=n), 0.0, None)
        return lux[:, np.newaxis]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _stream(
        self,
        sensor: SensorType,
        device: DeviceType,
        timestamps: np.ndarray,
        samples: np.ndarray,
    ) -> SensorStream:
        return SensorStream(
            sensor=sensor,
            device=device,
            timestamps=timestamps,
            samples=samples,
            sampling_rate=self.sampling_rate,
        )


def generate_recording(
    profile: BehaviorProfile,
    device: DeviceType,
    context: Context,
    duration: float,
    sensors: tuple[SensorType, ...] = tuple(SensorType),
    sampling_rate: float = DEFAULT_SAMPLING_RATE_HZ,
    seed: RandomState = None,
) -> MultiSensorRecording:
    """Convenience wrapper: generate one recording without keeping a generator."""
    generator = SensorStreamGenerator(profile, sampling_rate=sampling_rate, seed=seed)
    return generator.generate(device, context, duration, sensors=sensors)
