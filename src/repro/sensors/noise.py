"""Measurement-noise models applied to synthetic sensor signals.

Real MEMS sensors exhibit white noise, slowly wandering bias and occasional
spikes (e.g. bumps or sensor glitches).  The generators compose these models
on top of the behaviour-driven clean signal so that downstream feature
statistics resemble what a real 50 Hz trace would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np


class NoiseModel(Protocol):
    """Interface for additive noise models."""

    def sample(self, n_samples: int, n_axes: int, rng: np.random.Generator) -> np.ndarray:
        """Return an ``(n_samples, n_axes)`` array of additive noise."""
        ...


@dataclass(frozen=True)
class GaussianNoise:
    """White Gaussian measurement noise with per-axis standard deviation."""

    scale: float

    def __post_init__(self) -> None:
        if self.scale < 0:
            raise ValueError(f"scale must be >= 0, got {self.scale}")

    def sample(self, n_samples: int, n_axes: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(0.0, self.scale, size=(n_samples, n_axes))


@dataclass(frozen=True)
class BiasDrift:
    """Random-walk bias wander, integrated white noise with a decay term.

    Attributes
    ----------
    step_scale:
        Standard deviation of the per-sample random-walk increment.
    decay:
        Mean-reversion factor in ``[0, 1)``; larger values keep the bias close
        to zero (an AR(1) process).
    """

    step_scale: float
    decay: float = 0.999

    def __post_init__(self) -> None:
        if self.step_scale < 0:
            raise ValueError(f"step_scale must be >= 0, got {self.step_scale}")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {self.decay}")

    def sample(self, n_samples: int, n_axes: int, rng: np.random.Generator) -> np.ndarray:
        increments = rng.normal(0.0, self.step_scale, size=(n_samples, n_axes))
        bias = np.zeros((n_samples, n_axes))
        current = np.zeros(n_axes)
        for index in range(n_samples):
            current = self.decay * current + increments[index]
            bias[index] = current
        return bias


@dataclass(frozen=True)
class SpikeNoise:
    """Sparse, heavy-tailed spikes modelling bumps and glitches.

    Attributes
    ----------
    rate:
        Expected fraction of samples affected by a spike.
    magnitude:
        Scale of the Laplace-distributed spike amplitude.
    """

    rate: float
    magnitude: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {self.magnitude}")

    def sample(self, n_samples: int, n_axes: int, rng: np.random.Generator) -> np.ndarray:
        mask = rng.random(size=(n_samples, n_axes)) < self.rate
        spikes = rng.laplace(0.0, self.magnitude, size=(n_samples, n_axes))
        return np.where(mask, spikes, 0.0)


@dataclass(frozen=True)
class CompositeNoise:
    """Sum of several noise models applied to the same signal."""

    components: Sequence[NoiseModel] = field(default_factory=tuple)

    def sample(self, n_samples: int, n_axes: int, rng: np.random.Generator) -> np.ndarray:
        total = np.zeros((n_samples, n_axes))
        for component in self.components:
            total += component.sample(n_samples, n_axes, rng)
        return total


def default_motion_noise(scale: float) -> CompositeNoise:
    """Standard noise stack for accelerometer/gyroscope channels."""
    return CompositeNoise(
        components=(
            GaussianNoise(scale=scale),
            BiasDrift(step_scale=scale * 0.02),
            SpikeNoise(rate=0.002, magnitude=scale * 4.0),
        )
    )


def default_environment_noise(scale: float) -> CompositeNoise:
    """Noise stack for environment-driven sensors (magnetometer, light)."""
    return CompositeNoise(
        components=(
            GaussianNoise(scale=scale),
            BiasDrift(step_scale=scale * 0.1, decay=0.995),
        )
    )
