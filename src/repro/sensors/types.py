"""Core value types for sensor data: sensors, devices, contexts and streams."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping

import numpy as np

#: Default sampling rate used throughout the paper (Section V-A).
DEFAULT_SAMPLING_RATE_HZ = 50.0


class SensorType(str, Enum):
    """Hardware sensors considered in the paper's sensor-selection study."""

    ACCELEROMETER = "accelerometer"
    GYROSCOPE = "gyroscope"
    MAGNETOMETER = "magnetometer"
    ORIENTATION = "orientation"
    LIGHT = "light"

    @property
    def is_triaxial(self) -> bool:
        """Whether the sensor reports three spatial axes (light is scalar)."""
        return self is not SensorType.LIGHT

    @property
    def axes(self) -> tuple[str, ...]:
        """Axis labels for the sensor's channels."""
        if self is SensorType.LIGHT:
            return ("lux",)
        return ("x", "y", "z")


#: The two sensors selected by the Fisher-score analysis in Section V-B.
SELECTED_SENSORS: tuple[SensorType, ...] = (
    SensorType.ACCELEROMETER,
    SensorType.GYROSCOPE,
)

#: Every sensor evaluated in Table II.
ALL_SENSORS: tuple[SensorType, ...] = tuple(SensorType)


class DeviceType(str, Enum):
    """The two devices in the SmarterYou two-device configuration."""

    SMARTPHONE = "smartphone"
    SMARTWATCH = "smartwatch"


class Context(str, Enum):
    """Fine-grained usage contexts considered during context-model design.

    Section V-E initially considers four contexts and then merges the three
    relatively-stationary ones into a single *stationary* coarse context.
    """

    HANDHELD_STATIC = "handheld_static"  # using the phone while sitting/standing
    MOVING = "moving"                    # using the phone while walking
    ON_TABLE = "on_table"                # phone resting on a surface
    VEHICLE = "vehicle"                  # using the phone on a moving vehicle

    @property
    def coarse(self) -> "CoarseContext":
        """Map the fine context onto the paper's final two-context scheme."""
        if self is Context.MOVING:
            return CoarseContext.MOVING
        return CoarseContext.STATIONARY


class CoarseContext(str, Enum):
    """The two contexts the deployed detector distinguishes (Table V)."""

    STATIONARY = "stationary"
    MOVING = "moving"


FINE_CONTEXTS: tuple[Context, ...] = tuple(Context)
COARSE_CONTEXTS: tuple[CoarseContext, ...] = tuple(CoarseContext)


@dataclass(frozen=True)
class SensorReading:
    """A single timestamped sample from one sensor.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the recording.
    values:
        Channel values; three entries for tri-axial sensors, one for light.
    """

    timestamp: float
    values: tuple[float, ...]

    def magnitude(self) -> float:
        """Euclidean magnitude of the channel values (``sqrt(x^2+y^2+z^2)``)."""
        return float(np.sqrt(sum(v * v for v in self.values)))


@dataclass
class SensorStream:
    """A uniformly sampled stream from one sensor on one device.

    Attributes
    ----------
    sensor:
        Which physical sensor produced the stream.
    device:
        Which device hosts the sensor.
    timestamps:
        Sample times in seconds, shape ``(n,)``.
    samples:
        Channel data, shape ``(n, n_axes)``.
    sampling_rate:
        Nominal sampling rate in Hz.
    """

    sensor: SensorType
    device: DeviceType
    timestamps: np.ndarray
    samples: np.ndarray
    sampling_rate: float = DEFAULT_SAMPLING_RATE_HZ

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.ndim == 1:
            self.samples = self.samples[:, np.newaxis]
        if self.timestamps.ndim != 1:
            raise ValueError("timestamps must be one-dimensional")
        if len(self.timestamps) != len(self.samples):
            raise ValueError(
                f"timestamps ({len(self.timestamps)}) and samples ({len(self.samples)}) "
                "must have the same length"
            )
        expected_axes = len(self.sensor.axes)
        if self.samples.shape[1] != expected_axes:
            raise ValueError(
                f"{self.sensor.value} stream must have {expected_axes} channels, "
                f"got {self.samples.shape[1]}"
            )
        if self.sampling_rate <= 0:
            raise ValueError(f"sampling_rate must be positive, got {self.sampling_rate}")

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def duration(self) -> float:
        """Length of the stream in seconds (zero for an empty stream)."""
        if len(self.timestamps) == 0:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0]) + 1.0 / self.sampling_rate

    def magnitude(self) -> np.ndarray:
        """Per-sample Euclidean magnitude, the quantity featurised by the paper."""
        return np.linalg.norm(self.samples, axis=1)

    def axis(self, label: str) -> np.ndarray:
        """Return one named channel (``"x"``, ``"y"``, ``"z"`` or ``"lux"``)."""
        try:
            index = self.sensor.axes.index(label)
        except ValueError as exc:
            raise KeyError(
                f"{self.sensor.value} has no axis {label!r}; available: {self.sensor.axes}"
            ) from exc
        return self.samples[:, index]

    def slice_time(self, start: float, stop: float) -> "SensorStream":
        """Return the sub-stream with timestamps in ``[start, stop)``."""
        if stop < start:
            raise ValueError(f"stop ({stop}) must be >= start ({start})")
        mask = (self.timestamps >= start) & (self.timestamps < stop)
        return SensorStream(
            sensor=self.sensor,
            device=self.device,
            timestamps=self.timestamps[mask],
            samples=self.samples[mask],
            sampling_rate=self.sampling_rate,
        )

    def iter_readings(self) -> Iterator[SensorReading]:
        """Iterate over the stream as individual :class:`SensorReading` objects."""
        for timestamp, row in zip(self.timestamps, self.samples):
            yield SensorReading(timestamp=float(timestamp), values=tuple(float(v) for v in row))

    def concatenate(self, other: "SensorStream") -> "SensorStream":
        """Append *other* to this stream, shifting its timestamps to follow on."""
        if other.sensor is not self.sensor or other.device is not self.device:
            raise ValueError("can only concatenate streams from the same sensor and device")
        if len(self) == 0:
            return other
        offset = self.timestamps[-1] + 1.0 / self.sampling_rate
        return SensorStream(
            sensor=self.sensor,
            device=self.device,
            timestamps=np.concatenate([self.timestamps, other.timestamps + offset]),
            samples=np.vstack([self.samples, other.samples]),
            sampling_rate=self.sampling_rate,
        )


@dataclass
class MultiSensorRecording:
    """All sensor streams recorded on one device during one session.

    Attributes
    ----------
    device:
        The recording device.
    user_id:
        Identifier of the user who produced the recording.
    context:
        Ground-truth fine-grained context the session was recorded under.
    streams:
        Mapping from sensor type to its stream.
    """

    device: DeviceType
    user_id: str
    context: Context
    streams: Mapping[SensorType, SensorStream] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for sensor, stream in self.streams.items():
            if stream.sensor is not sensor:
                raise ValueError(
                    f"stream registered under {sensor.value} was produced by "
                    f"{stream.sensor.value}"
                )
            if stream.device is not self.device:
                raise ValueError(
                    f"stream for {stream.device.value} registered on a "
                    f"{self.device.value} recording"
                )

    @property
    def coarse_context(self) -> CoarseContext:
        """Coarse (stationary/moving) label of the recording."""
        return self.context.coarse

    @property
    def duration(self) -> float:
        """Duration of the longest stream in the recording."""
        if not self.streams:
            return 0.0
        return max(stream.duration for stream in self.streams.values())

    def __getitem__(self, sensor: SensorType) -> SensorStream:
        return self.streams[sensor]

    def __contains__(self, sensor: SensorType) -> bool:
        return sensor in self.streams

    def sensors(self) -> tuple[SensorType, ...]:
        """Sensors present in the recording, in enum declaration order."""
        return tuple(sensor for sensor in SensorType if sensor in self.streams)

    def restricted_to(self, sensors: tuple[SensorType, ...]) -> "MultiSensorRecording":
        """Return a copy containing only the requested sensors."""
        missing = [sensor for sensor in sensors if sensor not in self.streams]
        if missing:
            raise KeyError(f"recording lacks sensors: {[s.value for s in missing]}")
        return MultiSensorRecording(
            device=self.device,
            user_id=self.user_id,
            context=self.context,
            streams={sensor: self.streams[sensor] for sensor in sensors},
        )
