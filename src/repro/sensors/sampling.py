"""Resampling and windowing utilities for sensor streams.

Real devices deliver samples with clock jitter and occasional gaps; the
feature pipeline expects uniformly sampled windows.  These helpers bridge the
two and also provide the window-start arithmetic shared by the feature
extractor and the online authentication loop.
"""

from __future__ import annotations

import numpy as np

from repro.sensors.types import SensorStream
from repro.utils.validation import check_positive


def resample_uniform(stream: SensorStream, target_rate: float) -> SensorStream:
    """Linearly resample *stream* onto a uniform grid at *target_rate* Hz."""
    check_positive(target_rate, "target_rate")
    if len(stream) < 2:
        return SensorStream(
            sensor=stream.sensor,
            device=stream.device,
            timestamps=stream.timestamps.copy(),
            samples=stream.samples.copy(),
            sampling_rate=target_rate,
        )
    start, stop = float(stream.timestamps[0]), float(stream.timestamps[-1])
    n_samples = max(2, int(np.floor((stop - start) * target_rate)) + 1)
    new_times = start + np.arange(n_samples) / target_rate
    new_samples = np.column_stack(
        [
            np.interp(new_times, stream.timestamps, stream.samples[:, axis])
            for axis in range(stream.samples.shape[1])
        ]
    )
    return SensorStream(
        sensor=stream.sensor,
        device=stream.device,
        timestamps=new_times,
        samples=new_samples,
        sampling_rate=target_rate,
    )


def decimate(stream: SensorStream, factor: int) -> SensorStream:
    """Keep every *factor*-th sample (simple decimation without filtering)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return SensorStream(
        sensor=stream.sensor,
        device=stream.device,
        timestamps=stream.timestamps[::factor],
        samples=stream.samples[::factor],
        sampling_rate=stream.sampling_rate / factor,
    )


def add_clock_jitter(
    stream: SensorStream, jitter_std: float, rng: np.random.Generator
) -> SensorStream:
    """Perturb timestamps with Gaussian jitter while keeping them increasing."""
    if jitter_std < 0:
        raise ValueError(f"jitter_std must be >= 0, got {jitter_std}")
    jitter = rng.normal(0.0, jitter_std, size=len(stream))
    perturbed = np.sort(stream.timestamps + jitter)
    return SensorStream(
        sensor=stream.sensor,
        device=stream.device,
        timestamps=perturbed,
        samples=stream.samples,
        sampling_rate=stream.sampling_rate,
    )


def window_starts(n_samples: int, window_samples: int, step_samples: int | None = None) -> np.ndarray:
    """Start indices of complete windows over a stream of *n_samples* samples.

    Parameters
    ----------
    n_samples:
        Total number of samples available.
    window_samples:
        Window length in samples.
    step_samples:
        Hop between window starts; defaults to non-overlapping windows.
    """
    if window_samples < 1:
        raise ValueError(f"window_samples must be >= 1, got {window_samples}")
    step = window_samples if step_samples is None else step_samples
    if step < 1:
        raise ValueError(f"step_samples must be >= 1, got {step}")
    if n_samples < window_samples:
        return np.array([], dtype=int)
    return np.arange(0, n_samples - window_samples + 1, step, dtype=int)
