"""Per-user behavioural profiles that parameterise the sensor generators.

The paper's central premise is that "users' behavioural patterns are different
from person to person, and vary under different usage contexts".  A
:class:`BehaviorProfile` captures the stable, user-specific parameters that
make that true in our simulation:

* **gait**: stride frequency, per-axis amplitudes, harmonic structure and
  phase offsets, which dominate accelerometer/gyroscope signals while walking;
* **grip**: tremor frequency and amplitude plus holding-angle bias, which
  dominate the signals while the user holds the phone stationary;
* **arm swing**: how strongly the wrist (smartwatch) amplifies or attenuates
  the body motion relative to the phone in the pocket/hand;
* **environment**: ambient light level and local magnetic field, which are
  properties of the surroundings rather than the user and therefore carry very
  little identity information (this is why the magnetometer, orientation and
  light sensors earn low Fisher scores in Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

import numpy as np

from repro.utils.rng import RandomState, derive_rng
from repro.sensors.types import DeviceType


class DeviceCarryStyle(str, Enum):
    """How the user habitually carries or holds the smartphone."""

    IN_HAND = "in_hand"
    TROUSER_POCKET = "trouser_pocket"
    BAG = "bag"


@dataclass(frozen=True)
class GaitParameters:
    """Walking-dynamics parameters for one user.

    Attributes
    ----------
    frequency_hz:
        Fundamental stride frequency (typical human range 1.4–2.4 Hz).
    amplitude:
        Per-axis acceleration amplitude of the fundamental, in m/s^2.
    harmonic_weights:
        Relative weights of the 2nd and 3rd harmonics (heel strike shape).
    phase:
        Per-axis phase offsets of the fundamental, in radians.
    rotational_amplitude:
        Per-axis angular-velocity amplitude (rad/s) seen by the gyroscope.
    cadence_jitter:
        Standard deviation of the cycle-to-cycle stride-frequency variation.
    """

    frequency_hz: float
    amplitude: tuple[float, float, float]
    harmonic_weights: tuple[float, float]
    phase: tuple[float, float, float]
    rotational_amplitude: tuple[float, float, float]
    cadence_jitter: float


@dataclass(frozen=True)
class GripParameters:
    """Fine-motor parameters governing how the user holds a device.

    Attributes
    ----------
    tremor_frequency_hz:
        Dominant physiological-tremor frequency (typically 8–12 Hz).
    tremor_amplitude:
        Acceleration amplitude of the tremor, in m/s^2.
    micro_rotation:
        Angular-velocity amplitude of wrist micro-adjustments, in rad/s.
    hold_angle:
        Mean device tilt (pitch, roll) in radians while in use.
    adjustment_rate_hz:
        How often the user re-adjusts their grip (burst events per second).
    """

    tremor_frequency_hz: float
    tremor_amplitude: float
    micro_rotation: float
    hold_angle: tuple[float, float]
    adjustment_rate_hz: float


@dataclass(frozen=True)
class EnvironmentParameters:
    """Environmental conditions around the user (shared across users' ranges).

    These affect the magnetometer, orientation and light sensors far more than
    the user's own motion does, which is precisely why those sensors are poor
    authenticators (Table II).
    """

    ambient_light_lux: float
    light_variability: float
    magnetic_field_ut: tuple[float, float, float]
    magnetic_noise_ut: float


@dataclass(frozen=True)
class BehaviorProfile:
    """The complete behavioural fingerprint of one synthetic user.

    Attributes
    ----------
    user_id:
        Stable identifier for the user.
    gait:
        Walking-dynamics parameters.
    grip:
        Device-holding parameters.
    environment:
        Ambient conditions (low identity content by design).
    arm_swing_gain:
        Multiplier applied to body motion at the wrist (smartwatch).
    watch_phase_lag:
        Phase lag (radians) between wrist motion and body motion.
    carry_style:
        Habitual carrying style for the smartphone.
    sensor_noise:
        Standard deviation of white measurement noise added to the motion
        sensors; models device quality plus incidental hand shake.
    vehicle_sensitivity:
        How strongly vehicle vibration couples into the user's hands.
    """

    user_id: str
    gait: GaitParameters
    grip: GripParameters
    environment: EnvironmentParameters
    arm_swing_gain: float
    watch_phase_lag: float
    carry_style: DeviceCarryStyle
    sensor_noise: float
    vehicle_sensitivity: float

    def motion_gain(self, device: DeviceType) -> float:
        """Gain applied to gross body motion for the given device."""
        if device is DeviceType.SMARTWATCH:
            return self.arm_swing_gain
        if self.carry_style is DeviceCarryStyle.BAG:
            return 0.65
        if self.carry_style is DeviceCarryStyle.TROUSER_POCKET:
            return 0.85
        return 1.0

    def phase_lag(self, device: DeviceType) -> float:
        """Phase lag of the device's motion relative to the body."""
        return self.watch_phase_lag if device is DeviceType.SMARTWATCH else 0.0

    def with_user_id(self, user_id: str) -> "BehaviorProfile":
        """Return a copy of the profile assigned to a different user id."""
        return replace(self, user_id=user_id)


def sample_gait(rng: np.random.Generator) -> GaitParameters:
    """Draw gait parameters from population-level distributions."""
    frequency = float(rng.uniform(1.4, 2.4))
    vertical = float(rng.uniform(1.2, 3.6))
    lateral = float(rng.uniform(0.4, 1.6))
    forward = float(rng.uniform(0.8, 2.6))
    return GaitParameters(
        frequency_hz=frequency,
        amplitude=(lateral, vertical, forward),
        harmonic_weights=(float(rng.uniform(0.25, 0.65)), float(rng.uniform(0.05, 0.3))),
        phase=tuple(float(p) for p in rng.uniform(0.0, 2.0 * np.pi, size=3)),
        rotational_amplitude=(
            float(rng.uniform(0.2, 1.2)),
            float(rng.uniform(0.3, 1.8)),
            float(rng.uniform(0.1, 0.9)),
        ),
        cadence_jitter=float(rng.uniform(0.01, 0.06)),
    )


def sample_grip(rng: np.random.Generator) -> GripParameters:
    """Draw grip / fine-motor parameters from population-level distributions."""
    return GripParameters(
        tremor_frequency_hz=float(rng.uniform(8.0, 12.0)),
        tremor_amplitude=float(rng.uniform(0.02, 0.16)),
        micro_rotation=float(rng.uniform(0.01, 0.12)),
        hold_angle=(float(rng.uniform(0.3, 1.1)), float(rng.uniform(-0.35, 0.35))),
        adjustment_rate_hz=float(rng.uniform(0.05, 0.4)),
    )


def sample_environment(rng: np.random.Generator) -> EnvironmentParameters:
    """Draw ambient-environment parameters.

    The distributions intentionally overlap heavily between users so that the
    environment-driven sensors carry little discriminative signal.
    """
    return EnvironmentParameters(
        ambient_light_lux=float(rng.uniform(80.0, 600.0)),
        light_variability=float(rng.uniform(30.0, 220.0)),
        magnetic_field_ut=(
            float(rng.normal(22.0, 6.0)),
            float(rng.normal(5.0, 6.0)),
            float(rng.normal(-42.0, 6.0)),
        ),
        magnetic_noise_ut=float(rng.uniform(1.5, 6.0)),
    )


def sample_profile(user_id: str, seed: RandomState = None) -> BehaviorProfile:
    """Sample a complete behavioural profile for *user_id*.

    The generator stream is derived from ``(seed, "profile", user_id)`` so a
    population built from one top-level seed gives every user an independent
    but reproducible profile.
    """
    rng = derive_rng(seed, "profile", user_id)
    carry_style = DeviceCarryStyle(
        rng.choice([style.value for style in DeviceCarryStyle], p=[0.5, 0.35, 0.15])
    )
    return BehaviorProfile(
        user_id=user_id,
        gait=sample_gait(rng),
        grip=sample_grip(rng),
        environment=sample_environment(rng),
        arm_swing_gain=float(rng.uniform(1.1, 2.2)),
        watch_phase_lag=float(rng.uniform(0.2, 1.2)),
        carry_style=carry_style,
        sensor_noise=float(rng.uniform(0.03, 0.1)),
        vehicle_sensitivity=float(rng.uniform(0.4, 1.2)),
    )


@dataclass(frozen=True)
class ProfileBlend:
    """A convex combination of two profiles, used by mimicry attackers.

    ``fidelity`` is the fraction of the victim's behaviour the attacker manages
    to copy; the remainder stays the attacker's own.  The mimicry attacker in
    Section V-G can copy the coarse motion (gait frequency, rough amplitude)
    but not fine-grained dynamics (phases, tremor spectrum), so
    :func:`blend_profiles` only interpolates the coarse parameters.
    """

    attacker: BehaviorProfile
    victim: BehaviorProfile
    fidelity: float


def blend_profiles(blend: ProfileBlend) -> BehaviorProfile:
    """Build the effective profile an imitating attacker exhibits.

    Coarse, observable parameters (stride frequency, gross amplitudes, hold
    angle) move toward the victim with weight ``fidelity``.  Fine-grained,
    unobservable parameters (phases, tremor frequency, micro-rotation, cadence
    jitter) remain the attacker's own, and imitation adds extra variability
    through an inflated ``sensor_noise``.
    """
    if not 0.0 <= blend.fidelity <= 1.0:
        raise ValueError(f"fidelity must be in [0, 1], got {blend.fidelity}")
    a, v, w = blend.attacker, blend.victim, blend.fidelity

    def lerp(x: float, y: float) -> float:
        return float((1.0 - w) * x + w * y)

    def lerp_tuple(xs: tuple[float, ...], ys: tuple[float, ...]) -> tuple[float, ...]:
        return tuple(lerp(x, y) for x, y in zip(xs, ys))

    gait = GaitParameters(
        frequency_hz=lerp(a.gait.frequency_hz, v.gait.frequency_hz),
        amplitude=lerp_tuple(a.gait.amplitude, v.gait.amplitude),
        harmonic_weights=a.gait.harmonic_weights,
        phase=a.gait.phase,
        rotational_amplitude=lerp_tuple(
            a.gait.rotational_amplitude, v.gait.rotational_amplitude
        ),
        cadence_jitter=a.gait.cadence_jitter + 0.02 * w,
    )
    grip = GripParameters(
        tremor_frequency_hz=a.grip.tremor_frequency_hz,
        tremor_amplitude=lerp(a.grip.tremor_amplitude, v.grip.tremor_amplitude),
        micro_rotation=a.grip.micro_rotation,
        hold_angle=lerp_tuple(a.grip.hold_angle, v.grip.hold_angle),
        adjustment_rate_hz=a.grip.adjustment_rate_hz,
    )
    return BehaviorProfile(
        user_id=f"{a.user_id}-as-{v.user_id}",
        gait=gait,
        grip=grip,
        environment=v.environment,
        arm_swing_gain=lerp(a.arm_swing_gain, v.arm_swing_gain),
        watch_phase_lag=a.watch_phase_lag,
        carry_style=v.carry_style,
        sensor_noise=a.sensor_noise * (1.0 + 0.8 * w),
        vehicle_sensitivity=a.vehicle_sensitivity,
    )
