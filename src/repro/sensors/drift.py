"""Behavioural-drift model used by the retraining study (Section V-I, Fig. 7).

The paper observes that a legitimate user's behaviour slowly changes over
weeks, which lowers the confidence score of the deployed classifier and must
eventually trigger retraining.  :class:`BehaviorDriftModel` produces, for any
elapsed time, a perturbed copy of a base profile whose parameters have moved
smoothly away from their enrolment-time values.

What matters for the deployed classifier is that the user's *new* behaviour is
less like the enrolled snapshot and therefore closer to the "other users"
side of the decision boundary.  The model captures that with two components:

* the user's distinguishing parameters (stride frequency and amplitude,
  tremor amplitude, hold angle) regress slowly toward population-typical
  values — new shoes, an injury that heals, seasonal clothing and plain habit
  change all push behaviour toward the common range;
* the user becomes somewhat less consistent relative to the old snapshot,
  modelled as a slow growth of the incidental-motion noise.

Together these erode the confidence score of a model trained on the old
behaviour, exactly the effect Figure 7 relies on, while retraining on fresh
data restores it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.sensors.behavior import BehaviorProfile, GaitParameters, GripParameters
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_positive

#: Population-typical values the drifting parameters regress toward (the
#: midpoints of the sampling ranges in :mod:`repro.sensors.behavior`).
POPULATION_TYPICAL = {
    "gait_frequency_hz": 1.9,
    "gait_amplitude": (1.0, 2.4, 1.7),
    "rotational_amplitude": (0.7, 1.05, 0.5),
    "tremor_amplitude": 0.09,
    "hold_angle": (0.7, 0.0),
}


@dataclass(frozen=True)
class DriftSchedule:
    """How fast each behavioural parameter drifts, per day of elapsed time.

    ``*_rate`` values are the fraction of the gap to the population-typical
    value closed per day; ``consistency_loss_rate`` is the relative growth of
    behavioural inconsistency (incidental-motion noise) per day.
    """

    gait_frequency_rate: float = 0.02
    gait_amplitude_rate: float = 0.03
    tremor_amplitude_rate: float = 0.03
    hold_angle_rate: float = 0.025
    consistency_loss_rate: float = 0.0
    daily_wobble: float = 0.01


def _toward(value: float, target: float, fraction: float) -> float:
    """Move *value* toward *target* by *fraction* of the gap (clamped to 1)."""
    fraction = min(1.0, max(0.0, fraction))
    return float(value + fraction * (target - value))


class BehaviorDriftModel:
    """Generates time-drifted versions of a behavioural profile.

    Parameters
    ----------
    base_profile:
        The profile captured at enrolment time.
    schedule:
        Per-parameter drift rates.
    seed:
        Seed controlling the daily wobble.
    """

    def __init__(
        self,
        base_profile: BehaviorProfile,
        schedule: DriftSchedule | None = None,
        seed: RandomState = None,
    ) -> None:
        self.base_profile = base_profile
        self.schedule = schedule or DriftSchedule()
        self._seed = seed

    def profile_at(self, elapsed_days: float) -> BehaviorProfile:
        """Return the user's effective profile after *elapsed_days* of drift."""
        if elapsed_days < 0:
            raise ValueError(f"elapsed_days must be >= 0, got {elapsed_days}")
        if elapsed_days == 0:
            return self.base_profile
        schedule = self.schedule
        rng = derive_rng(
            self._seed, "drift-day", self.base_profile.user_id, round(elapsed_days, 3)
        )

        def wobble() -> float:
            return 1.0 + float(rng.normal(0.0, schedule.daily_wobble))

        gait = self.base_profile.gait
        target_amplitude = POPULATION_TYPICAL["gait_amplitude"]
        target_rotation = POPULATION_TYPICAL["rotational_amplitude"]
        drifted_gait = GaitParameters(
            frequency_hz=_toward(
                gait.frequency_hz,
                POPULATION_TYPICAL["gait_frequency_hz"],
                schedule.gait_frequency_rate * elapsed_days,
            )
            * wobble(),
            amplitude=tuple(
                _toward(value, target, schedule.gait_amplitude_rate * elapsed_days) * wobble()
                for value, target in zip(gait.amplitude, target_amplitude)
            ),
            harmonic_weights=gait.harmonic_weights,
            phase=gait.phase,
            rotational_amplitude=tuple(
                _toward(value, target, schedule.gait_amplitude_rate * elapsed_days)
                for value, target in zip(gait.rotational_amplitude, target_rotation)
            ),
            cadence_jitter=gait.cadence_jitter,
        )
        grip = self.base_profile.grip
        target_hold = POPULATION_TYPICAL["hold_angle"]
        drifted_grip = GripParameters(
            tremor_frequency_hz=grip.tremor_frequency_hz,
            tremor_amplitude=_toward(
                grip.tremor_amplitude,
                POPULATION_TYPICAL["tremor_amplitude"],
                schedule.tremor_amplitude_rate * elapsed_days,
            )
            * wobble(),
            micro_rotation=grip.micro_rotation,
            hold_angle=tuple(
                _toward(value, target, schedule.hold_angle_rate * elapsed_days)
                for value, target in zip(grip.hold_angle, target_hold)
            ),
            adjustment_rate_hz=grip.adjustment_rate_hz,
        )
        noise_scale = 1.0 + schedule.consistency_loss_rate * elapsed_days
        return replace(
            self.base_profile,
            gait=drifted_gait,
            grip=drifted_grip,
            sensor_noise=self.base_profile.sensor_noise * noise_scale,
        )

    def divergence(self, elapsed_days: float) -> float:
        """Scalar measure of how far the profile has drifted from its baseline.

        Computed as the mean relative change of the drifting parameters; used
        by tests to verify drift monotonicity.
        """
        drifted = self.profile_at(elapsed_days)
        base = self.base_profile
        terms = [
            abs(drifted.gait.frequency_hz - base.gait.frequency_hz) / base.gait.frequency_hz,
            float(
                np.mean(
                    [
                        abs(d - b) / max(abs(b), 1e-9)
                        for d, b in zip(drifted.gait.amplitude, base.gait.amplitude)
                    ]
                )
            ),
            abs(drifted.grip.tremor_amplitude - base.grip.tremor_amplitude)
            / max(base.grip.tremor_amplitude, 1e-9),
        ]
        return float(np.mean(terms))


def drift_profile(
    profile: BehaviorProfile,
    elapsed_days: float,
    schedule: DriftSchedule | None = None,
    seed: RandomState = None,
) -> BehaviorProfile:
    """One-shot helper: return *profile* drifted by *elapsed_days*."""
    check_positive(elapsed_days, "elapsed_days", strict=False)
    return BehaviorDriftModel(profile, schedule=schedule, seed=seed).profile_at(elapsed_days)
