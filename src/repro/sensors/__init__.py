"""Sensor substrate: synthetic 50 Hz motion-sensor streams for phone and watch.

The paper collects accelerometer, gyroscope, magnetometer, orientation and
light readings from 35 participants carrying a Nexus 5 and a Moto 360.  This
package replaces the human study with a parametric behaviour model: each
synthetic user owns a :class:`~repro.sensors.behavior.BehaviorProfile` whose
parameters (gait frequency and amplitude, grip tremor spectrum, posture bias,
environmental exposure) drive physics-inspired signal generators under each
usage context.  Inter-user parameter variation is large relative to intra-user
noise, which is the property the paper's entire evaluation rests on.
"""

from repro.sensors.types import (
    Context,
    CoarseContext,
    DeviceType,
    SensorReading,
    SensorStream,
    SensorType,
    MultiSensorRecording,
)
from repro.sensors.behavior import BehaviorProfile, DeviceCarryStyle, sample_profile
from repro.sensors.noise import GaussianNoise, BiasDrift, SpikeNoise, CompositeNoise
from repro.sensors.generators import SensorStreamGenerator, generate_recording
from repro.sensors.drift import BehaviorDriftModel, drift_profile
from repro.sensors.sampling import resample_uniform, decimate, window_starts

__all__ = [
    "Context",
    "CoarseContext",
    "DeviceType",
    "SensorReading",
    "SensorStream",
    "SensorType",
    "MultiSensorRecording",
    "BehaviorProfile",
    "DeviceCarryStyle",
    "sample_profile",
    "GaussianNoise",
    "BiasDrift",
    "SpikeNoise",
    "CompositeNoise",
    "SensorStreamGenerator",
    "generate_recording",
    "BehaviorDriftModel",
    "drift_profile",
    "resample_uniform",
    "decimate",
    "window_starts",
]
