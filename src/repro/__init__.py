"""SmarterYou: implicit smartphone user authentication with sensors and
contextual machine learning.

A from-scratch reproduction of Lee & Lee, DSN 2017 (arXiv:1708.09754).  The
top-level package re-exports the most commonly used entry points; see
``repro.core`` for the system, ``repro.experiments`` for the paper's tables
and figures, and DESIGN.md for the full inventory.
"""

from repro.core import SmarterYou, SmarterYouConfig, ContextDetector
from repro.datasets import build_study_population, collect_free_form_dataset
from repro.devices import AuthenticationServer
from repro.ml import KernelRidgeClassifier

__version__ = "1.0.0"

__all__ = [
    "SmarterYou",
    "SmarterYouConfig",
    "ContextDetector",
    "AuthenticationServer",
    "KernelRidgeClassifier",
    "build_study_population",
    "collect_free_form_dataset",
    "__version__",
]
