"""Deterministic random-number-generator helpers.

Every stochastic component in the library (sensor generators, attackers,
dataset collection, machine-learning algorithms with random initialisation)
accepts either an integer seed or a :class:`numpy.random.Generator`.  These
helpers normalise that argument and derive stable child generators so that an
experiment with a single top-level seed is fully reproducible while its
components remain statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

#: Alias used throughout the code base for anything accepted as a seed.
RandomState = int | np.random.Generator | None


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh non-deterministic generator), an integer seed, or an
        existing generator (returned unchanged).

    Raises
    ------
    TypeError
        If *seed* is not ``None``, an integer or a generator.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int or a numpy Generator, got {type(seed).__name__}"
    )


def _stable_hash(tokens: Iterable[object]) -> int:
    """Hash an iterable of tokens into a 64-bit integer, stable across runs."""
    digest = hashlib.sha256("\x1f".join(str(t) for t in tokens).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def derive_rng(seed: RandomState, *tokens: object) -> np.random.Generator:
    """Derive a child generator from *seed* and a sequence of string tokens.

    The same ``(seed, tokens)`` pair always yields the same stream, and
    different token sequences yield statistically independent streams.  When
    *seed* is already a generator, a child seed is drawn from it (so the call
    is only reproducible relative to the generator state).
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**63 - 1))
    else:
        base = int(seed)
    mixed = _stable_hash([base, *tokens])
    return np.random.default_rng(mixed)


def spawn_rngs(seed: RandomState, count: int, label: str = "child") -> list[np.random.Generator]:
    """Spawn *count* independent child generators labelled ``label/i``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_rng(seed, label, index) for index in range(count)]


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence[object], size: int
) -> list[object]:
    """Sample *size* distinct items from *items* using *rng*.

    Raises
    ------
    ValueError
        If *size* exceeds the number of available items.
    """
    if size > len(items):
        raise ValueError(f"cannot sample {size} items from a population of {len(items)}")
    indices = rng.choice(len(items), size=size, replace=False)
    return [items[int(i)] for i in indices]
