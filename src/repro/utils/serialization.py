"""Lightweight JSON serialization for models, profiles and experiment results.

The cloud authentication server in the paper ships trained authentication
models to the smartphone as parameter files.  We mirror that by serialising
model parameters and experiment outputs to JSON, converting NumPy containers
to plain Python types on the way out and back again on the way in.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np


def _to_jsonable(value: Any) -> Any:
    """Recursively convert NumPy scalars/arrays into JSON-friendly values."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    return value


def _from_jsonable(value: Any) -> Any:
    """Inverse of :func:`_to_jsonable`."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value.get("dtype", "float64"))
        return {key: _from_jsonable(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(item) for item in value]
    return value


def to_jsonable(value: Any) -> Any:
    """Public form of the NumPy→JSON conversion (used by the binary codec's
    frame headers, so header fields follow exactly the JSON wire rules)."""
    return _to_jsonable(value)


def from_jsonable(value: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    return _from_jsonable(value)


def to_json_file(payload: Any, path: str | Path, *, indent: int = 2) -> Path:
    """Serialise *payload* to *path*, creating parent directories as needed."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(payload), handle, indent=indent, sort_keys=True)
    return target


def from_json_file(path: str | Path) -> Any:
    """Load a payload previously written by :func:`to_json_file`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return _from_jsonable(json.load(handle))


def dumps(payload: Any) -> str:
    """Serialise *payload* to a JSON string."""
    return json.dumps(_to_jsonable(payload), sort_keys=True)


def loads(text: str) -> Any:
    """Parse a JSON string produced by :func:`dumps`."""
    return _from_jsonable(json.loads(text))
