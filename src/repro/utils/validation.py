"""Argument-validation helpers shared by the library's public API.

The helpers raise informative exceptions early so that user errors surface at
the call site instead of deep inside numerical code.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def check_array(
    value: Any,
    name: str,
    *,
    ndim: int | None = None,
    dtype: type | None = float,
    allow_empty: bool = False,
) -> np.ndarray:
    """Coerce *value* to an ndarray and validate its shape.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    dtype:
        Target dtype passed to :func:`numpy.asarray`.
    allow_empty:
        Whether a zero-sized array is acceptable.
    """
    array = np.asarray(value, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    if not allow_empty and array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if dtype is float and not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return array


def check_same_length(first: Sequence[Any], second: Sequence[Any], names: str = "X, y") -> None:
    """Raise if the two sequences have different lengths."""
    if len(first) != len(second):
        raise ValueError(
            f"{names} must have the same length, got {len(first)} and {len(second)}"
        )


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that *value* is positive (strictly by default)."""
    numeric = float(value)
    if strict and numeric <= 0:
        raise ValueError(f"{name} must be > 0, got {numeric}")
    if not strict and numeric < 0:
        raise ValueError(f"{name} must be >= 0, got {numeric}")
    return numeric


def check_in_range(
    value: float, name: str, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate that *value* lies in ``[low, high]`` (or ``(low, high)``)."""
    numeric = float(value)
    if inclusive:
        if not (low <= numeric <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {numeric}")
    else:
        if not (low < numeric < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {numeric}")
    return numeric


def check_probability(value: float, name: str) -> float:
    """Validate that *value* is a probability in ``[0, 1]``."""
    return check_in_range(value, name, 0.0, 1.0)


def check_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`RuntimeError` if *estimator* lacks a fitted attribute."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} is not fitted yet; call fit() before predict()"
        )
