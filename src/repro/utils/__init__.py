"""Shared utilities: random-number handling, validation and serialization."""

from repro.utils.rng import RandomState, derive_rng, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_in_range,
    check_positive,
    check_probability,
    check_same_length,
)
from repro.utils.serialization import from_json_file, to_json_file

__all__ = [
    "RandomState",
    "derive_rng",
    "ensure_rng",
    "spawn_rngs",
    "check_array",
    "check_fitted",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_same_length",
    "from_json_file",
    "to_json_file",
]
