"""User-agnostic context detection (Section V-E, Table V).

The detector classifies each window as *stationary* or *moving* from the
smartphone feature vector only, using a random forest trained on other
users' labelled lab data.  Detection runs before authentication so that the
authenticator can select the matching per-context model.

Training goes through :func:`repro.devices.cloud.fit_context_detector` —
the same single entry point the cloud server and the service gateway use —
so the phone-side reproduction and the registry-served detector are always
products of one factory and one fitting policy.  A detector published to
(or loaded from) the model registry rehydrates into this class via
:meth:`ContextDetector.from_parts`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.cloud import default_context_detector_factory, fit_context_detector
from repro.features.vector import FeatureMatrix, FeatureVectorSpec
from repro.ml.base import BaseClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext, DeviceType
from repro.utils.rng import RandomState


@dataclass
class ContextDetectionReport:
    """Evaluation of the context detector on held-out labelled windows.

    Attributes
    ----------
    accuracy:
        Overall detection accuracy.
    confusion:
        Row-normalised confusion matrix (rows = true context), the layout of
        Table V.
    labels:
        Context labels indexing the confusion matrix axes.
    """

    accuracy: float
    confusion: np.ndarray
    labels: list[str]

    def as_table(self) -> dict[str, dict[str, float]]:
        """Nested-dict rendering of the confusion matrix (percentages)."""
        table: dict[str, dict[str, float]] = {}
        for i, true_label in enumerate(self.labels):
            table[true_label] = {
                predicted: 100.0 * float(self.confusion[i, j])
                for j, predicted in enumerate(self.labels)
            }
        return table


class ContextDetector:
    """Detects the coarse usage context from smartphone features.

    Parameters
    ----------
    spec:
        Phone-only feature specification used to form the context feature
        vector (the same Eq. 3 vector used for authentication).
    classifier:
        Unfitted classifier; defaults to the paper's random forest.
    """

    def __init__(
        self,
        spec: FeatureVectorSpec | None = None,
        classifier: BaseClassifier | None = None,
        random_state: RandomState = 7,
    ) -> None:
        self.spec = spec or FeatureVectorSpec(devices=(DeviceType.SMARTPHONE,))
        self.classifier = classifier or default_context_detector_factory(random_state)
        self.scaler = StandardScaler()
        self._fitted = False

    @classmethod
    def from_parts(
        cls,
        scaler: StandardScaler,
        classifier: BaseClassifier,
        spec: FeatureVectorSpec | None = None,
    ) -> "ContextDetector":
        """Rehydrate a detector from a fitted ``(scaler, classifier)`` pair.

        The inverse of publication: a detector trained anywhere (the cloud
        server, the gateway) and stored in the model registry comes back as
        a ready-to-detect paper-path object.

        Raises
        ------
        ValueError
            If either part is of the wrong type.
        """
        if not isinstance(scaler, StandardScaler):
            raise ValueError("scaler must be a fitted StandardScaler")
        if not isinstance(classifier, BaseClassifier):
            raise ValueError("classifier must be a fitted BaseClassifier")
        detector = cls(spec=spec, classifier=classifier)
        detector.scaler = scaler
        detector._fitted = True
        return detector

    # ------------------------------------------------------------------ #

    def fit(self, matrix: FeatureMatrix, exclude_user: str | None = None) -> "ContextDetector":
        """Train on labelled phone feature windows.

        Delegates to :func:`repro.devices.cloud.fit_context_detector`, the
        training entry point shared with the serving path.

        Parameters
        ----------
        matrix:
            Phone feature windows with ``contexts`` labels.
        exclude_user:
            Optionally exclude one user's rows, making the detector
            user-agnostic with respect to that user.

        Raises
        ------
        ValueError
            If the matrix has no context labels, or fewer than two distinct
            contexts remain after the exclusion.
        """
        self.scaler, self.classifier = fit_context_detector(
            matrix,
            exclude_user=exclude_user,
            classifier=self.classifier,
            require_both_contexts=True,
        )
        self._fitted = True
        return self

    def detect(self, phone_features: np.ndarray) -> list[CoarseContext]:
        """Detect the context of each row of phone feature vectors."""
        if not self._fitted:
            raise RuntimeError("ContextDetector is not fitted yet")
        phone_features = np.asarray(phone_features, dtype=float)
        if phone_features.ndim == 1:
            phone_features = phone_features[np.newaxis, :]
        predictions = self.classifier.predict(self.scaler.transform(phone_features))
        return [CoarseContext(str(label)) for label in predictions]

    def detect_one(self, phone_features: np.ndarray) -> CoarseContext:
        """Detect the context of a single window."""
        return self.detect(np.atleast_2d(phone_features))[0]

    # ------------------------------------------------------------------ #

    def evaluate(self, matrix: FeatureMatrix) -> ContextDetectionReport:
        """Evaluate on labelled windows, producing the Table V confusion matrix."""
        if not matrix.contexts:
            raise ValueError("matrix must carry context labels")
        predictions = [context.value for context in self.detect(matrix.values)]
        truths = list(matrix.contexts)
        labels = [context.value for context in CoarseContext]
        counts, _ = confusion_matrix(truths, predictions, labels=labels)
        row_sums = counts.sum(axis=1, keepdims=True).astype(float)
        row_sums[row_sums == 0.0] = 1.0
        return ContextDetectionReport(
            accuracy=accuracy_score(truths, predictions),
            confusion=counts / row_sums,
            labels=labels,
        )
