"""User-agnostic context detection (Section V-E, Table V).

The detector classifies each window as *stationary* or *moving* from the
smartphone feature vector only, using a random forest trained on other
users' labelled lab data.  Detection runs before authentication so that the
authenticator can select the matching per-context model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.vector import FeatureMatrix, FeatureVectorSpec
from repro.ml.base import BaseClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext, DeviceType
from repro.utils.rng import RandomState


@dataclass
class ContextDetectionReport:
    """Evaluation of the context detector on held-out labelled windows.

    Attributes
    ----------
    accuracy:
        Overall detection accuracy.
    confusion:
        Row-normalised confusion matrix (rows = true context), the layout of
        Table V.
    labels:
        Context labels indexing the confusion matrix axes.
    """

    accuracy: float
    confusion: np.ndarray
    labels: list[str]

    def as_table(self) -> dict[str, dict[str, float]]:
        """Nested-dict rendering of the confusion matrix (percentages)."""
        table: dict[str, dict[str, float]] = {}
        for i, true_label in enumerate(self.labels):
            table[true_label] = {
                predicted: 100.0 * float(self.confusion[i, j])
                for j, predicted in enumerate(self.labels)
            }
        return table


class ContextDetector:
    """Detects the coarse usage context from smartphone features.

    Parameters
    ----------
    spec:
        Phone-only feature specification used to form the context feature
        vector (the same Eq. 3 vector used for authentication).
    classifier:
        Unfitted classifier; defaults to the paper's random forest.
    """

    def __init__(
        self,
        spec: FeatureVectorSpec | None = None,
        classifier: BaseClassifier | None = None,
        random_state: RandomState = 7,
    ) -> None:
        self.spec = spec or FeatureVectorSpec(devices=(DeviceType.SMARTPHONE,))
        self.classifier = classifier or RandomForestClassifier(
            n_estimators=40, max_depth=12, random_state=random_state
        )
        self.scaler = StandardScaler()
        self._fitted = False

    # ------------------------------------------------------------------ #

    def fit(self, matrix: FeatureMatrix, exclude_user: str | None = None) -> "ContextDetector":
        """Train on labelled phone feature windows.

        Parameters
        ----------
        matrix:
            Phone feature windows with ``contexts`` labels.
        exclude_user:
            Optionally exclude one user's rows, making the detector
            user-agnostic with respect to that user.
        """
        if not matrix.contexts:
            raise ValueError("matrix must carry context labels")
        values = matrix.values
        labels = np.asarray(matrix.contexts, dtype=object)
        if exclude_user is not None and matrix.user_ids:
            keep = np.array([uid != exclude_user for uid in matrix.user_ids])
            values, labels = values[keep], labels[keep]
        if len(np.unique(labels)) < 2:
            raise ValueError("context training data must contain both contexts")
        self.scaler = StandardScaler().fit(values)
        self.classifier.fit(self.scaler.transform(values), labels)
        self._fitted = True
        return self

    def detect(self, phone_features: np.ndarray) -> list[CoarseContext]:
        """Detect the context of each row of phone feature vectors."""
        if not self._fitted:
            raise RuntimeError("ContextDetector is not fitted yet")
        phone_features = np.asarray(phone_features, dtype=float)
        if phone_features.ndim == 1:
            phone_features = phone_features[np.newaxis, :]
        predictions = self.classifier.predict(self.scaler.transform(phone_features))
        return [CoarseContext(str(label)) for label in predictions]

    def detect_one(self, phone_features: np.ndarray) -> CoarseContext:
        """Detect the context of a single window."""
        return self.detect(np.atleast_2d(phone_features))[0]

    # ------------------------------------------------------------------ #

    def evaluate(self, matrix: FeatureMatrix) -> ContextDetectionReport:
        """Evaluate on labelled windows, producing the Table V confusion matrix."""
        if not matrix.contexts:
            raise ValueError("matrix must carry context labels")
        predictions = [context.value for context in self.detect(matrix.values)]
        truths = list(matrix.contexts)
        labels = [context.value for context in CoarseContext]
        counts, _ = confusion_matrix(truths, predictions, labels=labels)
        row_sums = counts.sum(axis=1, keepdims=True).astype(float)
        row_sums[row_sums == 0.0] = 1.0
        return ContextDetectionReport(
            accuracy=accuracy_score(truths, predictions),
            confusion=counts / row_sums,
            labels=labels,
        )
