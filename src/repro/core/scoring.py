"""Vectorized batch scoring of authentication windows.

The seed's :class:`~repro.core.authenticator.ContextualAuthenticator` looped
over windows one at a time, transforming and scoring each 1-row matrix
separately.  The :class:`BatchScorer` groups a batch of windows by the
per-context model that will score them and runs one whole-matrix
``scale → decision-function → predict`` pass per model, which is the
difference between thousands of tiny BLAS calls and a handful of large ones.
:func:`score_requests` goes one step further for the serving frontend: it
coalesces many users' requests into a *single* fused projection over the
whole fleet batch wherever the selected models are affine
(:class:`~repro.ml.base.LinearDecisionRule`), falling back to per-model
passes for everything else.

Model selection replicates the seed authenticator exactly (including the
fall-back behaviour for unknown contexts and the single-model "w/o context"
mode), and both the confidence score and the accept decision are computed by
the same per-context model methods the per-window path used.  With the
paper's default linear kernel-ridge models the batched scores are bit-for-bit
identical to per-window scoring (the primal decision projection is batch-size
invariant); non-linear kernels agree to float rounding because their kernel
matrices are BLAS products.

This module sits *below* :mod:`repro.devices`: it scores any bundle exposing
the structural interfaces below (:class:`ScorableModel`,
:class:`ScorableBundle`) and never imports the device or service layers, so
the dependency graph stays acyclic with no lazy-import workarounds.  The
concrete model types live in :mod:`repro.devices.cloud`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.ml.base import LinearDecisionRule
from repro.sensors.types import CoarseContext

# --------------------------------------------------------------------- #
# context int-encoding
# --------------------------------------------------------------------- #

#: Canonical decode table: ``CONTEXT_BY_CODE[code]`` is the coarse context
#: a small-int context code stands for.  The scoring hot path carries
#: contexts as ``int8`` code arrays end-to-end (protocol requests encode at
#: construction, the gateway detector emits codes directly), so the
#: per-flush bucketing below is pure NumPy with no per-row Python.
CONTEXT_BY_CODE: tuple[CoarseContext, ...] = tuple(CoarseContext)

#: Canonical encode table, the inverse of :data:`CONTEXT_BY_CODE`.
CONTEXT_CODES: dict[CoarseContext, int] = {
    context: code for code, context in enumerate(CONTEXT_BY_CODE)
}

#: Sorted context label values, for vectorized label→code translation.
_SORTED_LABELS = np.array(sorted(context.value for context in CONTEXT_BY_CODE))
_CODE_BY_SORTED_LABEL = np.asarray(
    [CONTEXT_CODES[CoarseContext(label)] for label in _SORTED_LABELS],
    dtype=np.int8,
)


def encode_contexts(contexts: Sequence[CoarseContext] | np.ndarray) -> np.ndarray:
    """Encode per-window context labels as canonical ``int8`` codes.

    Accepts an already-encoded integer array (validated and passed through),
    a NumPy array of label strings (translated in one vectorized
    ``searchsorted`` pass — the context detector's output path), or any
    sequence of :class:`~repro.sensors.types.CoarseContext` / label values.

    Raises
    ------
    ValueError
        If an integer code is out of range or a label names no context.
    """
    if isinstance(contexts, np.ndarray):
        if np.issubdtype(contexts.dtype, np.integer):
            # Range-check BEFORE any narrowing cast: an out-of-range code
            # that wraps to a valid int8 value (e.g. 256 -> 0) must be
            # rejected, never silently scored under the wrong model.
            if len(contexts) and (
                int(contexts.min()) < 0
                or int(contexts.max()) >= len(CONTEXT_BY_CODE)
            ):
                raise ValueError(
                    f"context codes must be in [0, {len(CONTEXT_BY_CODE)}), "
                    f"got values outside that range"
                )
            return contexts.astype(np.int8, copy=False)
        if contexts.dtype.kind in "US":
            return _encode_labels(contexts)
    return np.fromiter(
        (
            CONTEXT_CODES[
                context
                if isinstance(context, CoarseContext)
                else CoarseContext(context)
            ]
            for context in contexts
        ),
        dtype=np.int8,
        count=len(contexts),
    )


def _encode_labels(labels: np.ndarray) -> np.ndarray:
    """Vectorized label-string → code translation (detector predictions)."""
    positions = np.searchsorted(_SORTED_LABELS, labels)
    positions = np.clip(positions, 0, len(_SORTED_LABELS) - 1)
    matched = _SORTED_LABELS[positions] == labels
    if not matched.all():
        bad = labels[~matched][0]
        raise ValueError(f"{bad!r} is not a known coarse context label")
    return _CODE_BY_SORTED_LABEL[positions]


#: Object-dtype decode table: one vectorized gather turns a whole code
#: array back into enum members (no per-row ``CONTEXT_BY_CODE[...]`` calls).
_CONTEXT_OBJECTS = np.fromiter(
    CONTEXT_BY_CODE, dtype=object, count=len(CONTEXT_BY_CODE)
)


def decode_contexts(codes: np.ndarray) -> tuple[CoarseContext, ...]:
    """The coarse contexts a code array stands for (inverse of encoding)."""
    return tuple(_CONTEXT_OBJECTS[np.asarray(codes, dtype=np.intp)])


@runtime_checkable
class ScorableModel(Protocol):
    """Structural interface of one per-context authentication model."""

    context: CoarseContext

    def batch_decisions(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(confidence scores, accept mask)`` for many rows."""
        ...

    def decision_rule(self) -> LinearDecisionRule | None:
        """Affine reduction of the model's scoring pass, if one exists."""
        ...


@runtime_checkable
class ScorableBundle(Protocol):
    """Structural interface of a trained per-context model bundle."""

    user_id: str
    models: Mapping[CoarseContext, ScorableModel]
    version: int


@dataclass(frozen=True)
class BatchScoreResult:
    """Scores and decisions for one batch of windows.

    Attributes
    ----------
    scores:
        Confidence score per window (positive = legitimate side).
    accepted:
        Boolean accept decision per window.
    model_contexts:
        The context of the model that actually scored each window (after
        fall-back resolution), matching the seed's per-decision ``context``.
    model_version:
        Version of the bundle that produced the scores.
    """

    scores: np.ndarray
    accepted: np.ndarray
    model_contexts: tuple[CoarseContext, ...]
    model_version: int

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def n_accepted(self) -> int:
        return int(np.count_nonzero(self.accepted))

    @property
    def accept_rate(self) -> float:
        return float(np.mean(self.accepted)) if len(self.scores) else 0.0


def offsets_from_lengths(lengths: Sequence[int] | np.ndarray) -> np.ndarray:
    """Slice boundaries of back-to-back request blocks: ``offsets[i:i+2]``
    brackets request *i*'s rows in the combined batch."""
    lengths = np.asarray(lengths, dtype=np.intp)
    offsets = np.zeros(len(lengths) + 1, dtype=np.intp)
    np.cumsum(lengths, out=offsets[1:])
    return offsets


def canonicalize_rows(features: np.ndarray) -> np.ndarray:
    """Canonicalise window features: float dtype, a lone vector becomes one row.

    The single place every entry point (protocol requests, the gateway's
    detector, the scorers) funnels feature input through, so promotion and
    validation policy cannot drift between them.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim == 1:
        # A lone vector is one window; an empty 1-D input is an empty
        # batch, not a single zero-width window.
        features = (
            features[np.newaxis, :] if len(features) else features.reshape(0, 0)
        )
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    return features


def _validate_batch(
    features: np.ndarray, contexts: Sequence[CoarseContext] | np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalise one request's ``(features, context codes)`` pair."""
    features = canonicalize_rows(features)
    codes = encode_contexts(contexts)
    if len(codes) != len(features):
        raise ValueError(
            f"got {len(features)} feature rows but {len(codes)} context labels"
        )
    return features, codes


def _rows_by_slot(row_slots: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """Group row indices by their model slot, without per-row Python.

    Returns ``(slot, row_indices)`` pairs; each ``row_indices`` array holds
    the positions whose entry in *row_slots* equals ``slot``, in ascending
    row order (the stable sort preserves it).
    """
    order = np.argsort(row_slots, kind="stable")
    sorted_slots = row_slots[order]
    boundaries = np.flatnonzero(sorted_slots[1:] != sorted_slots[:-1]) + 1
    groups = np.split(order, boundaries)
    return [(int(row_slots[group[0]]), group) for group in groups if len(group)]


class BatchScorer:
    """Scores many windows against one user's model bundle in bulk.

    Parameters
    ----------
    bundle:
        The trained per-context model bundle to score against (any object
        satisfying :class:`ScorableBundle`, e.g.
        :class:`~repro.devices.cloud.TrainedModelBundle`).
    use_context:
        Mirrors :class:`~repro.core.authenticator.ContextualAuthenticator`:
        when false a single model (the stationary one if present) scores
        every window.
    """

    def __init__(self, bundle: ScorableBundle, use_context: bool = True) -> None:
        if not bundle.models:
            raise ValueError("the model bundle contains no trained models")
        self.bundle = bundle
        self.use_context = use_context

    # ------------------------------------------------------------------ #
    # model selection (mirrors ContextualAuthenticator._select_model)
    # ------------------------------------------------------------------ #

    def select_model(self, context: CoarseContext) -> ScorableModel:
        """The model that scores windows detected under *context*."""
        if not self.use_context:
            if CoarseContext.STATIONARY in self.bundle.models:
                return self.bundle.models[CoarseContext.STATIONARY]
            return next(iter(self.bundle.models.values()))
        if context in self.bundle.models:
            return self.bundle.models[context]
        # Degrade gracefully for never-enrolled contexts, as the seed did.
        return next(iter(self.bundle.models.values()))

    # ------------------------------------------------------------------ #

    def model_by_code(self) -> list[ScorableModel]:
        """Every context code's resolved model (the bucketing lookup table).

        Index *c* holds the model that scores windows whose detected context
        encodes to code *c* — fall-backs for never-enrolled contexts and the
        ``use_context=False`` single-model mode already applied.  Memoised
        per ``use_context`` value: the bundle is immutable, so resolution
        can never change under a fixed mode, and the serving hot path looks
        this table up once per scorer per coalesced flush.
        """
        cached = self.__dict__.get("_model_by_code")
        if cached is not None and cached[0] == self.use_context:
            return cached[1]
        models = [self.select_model(context) for context in CONTEXT_BY_CODE]
        self.__dict__["_model_by_code"] = (self.use_context, models)
        return models

    # ------------------------------------------------------------------ #

    def score(
        self, features: np.ndarray, contexts: Sequence[CoarseContext] | np.ndarray
    ) -> BatchScoreResult:
        """Score a batch of windows, each with its detected context.

        *contexts* may be coarse-context labels or an already-encoded
        ``int8`` code array (see :func:`encode_contexts`).  Rows sharing a
        resolved model are grouped in one vectorized pass — no per-row
        Python — and scored in a single call per model; results are
        scattered back into window order.
        """
        features, codes = _validate_batch(features, contexts)
        n_windows = len(features)
        scores = np.empty(n_windows)
        accepted = np.empty(n_windows, dtype=bool)
        if n_windows == 0:
            return BatchScoreResult(
                scores=scores,
                accepted=accepted,
                model_contexts=tuple(),
                model_version=self.bundle.version,
            )
        # Resolve every possible context code to its model once (a handful
        # of lookups), then bucket window indices by resolved model with
        # pure array operations: several detected contexts may fall back
        # onto the same model, so codes first map onto model *slots*.
        models = self.model_by_code()
        slot_by_id: dict[int, int] = {}
        distinct: list[ScorableModel] = []
        slot_by_code = np.empty(len(models), dtype=np.intp)
        for code, model in enumerate(models):
            slot = slot_by_id.get(id(model))
            if slot is None:
                slot = slot_by_id[id(model)] = len(distinct)
                distinct.append(model)
            slot_by_code[code] = slot
        row_slots = slot_by_code[codes]
        for slot in np.unique(row_slots):
            indices = np.flatnonzero(row_slots == slot)
            model = distinct[slot]
            scores[indices], accepted[indices] = model.batch_decisions(
                features[indices]
            )
        context_by_slot = np.fromiter(
            (model.context for model in distinct), dtype=object, count=len(distinct)
        )
        return BatchScoreResult(
            scores=scores,
            accepted=accepted,
            model_contexts=tuple(context_by_slot[row_slots]),
            model_version=self.bundle.version,
        )

    def confidence_scores(
        self, features: np.ndarray, contexts: Sequence[CoarseContext] | np.ndarray
    ) -> np.ndarray:
        """Confidence score per window (the retraining monitor's input)."""
        return self.score(features, contexts).scores


# ---------------------------------------------------------------------- #
# coalesced multi-request scoring (the micro-batching frontend's engine)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FusedStacks:
    """The stacked affine parameters of one fused model set.

    One row per fused model, in the canonical (id-sorted) order of the
    ``rules`` tuple.  Holding the rules themselves keeps them alive for the
    lifetime of the entry, so an ``id``-based cache key can never be reused
    by a different rule object while this entry exists.

    Attributes
    ----------
    rules:
        The fused decision rules, id-sorted; the cache key derives from it.
    mean, scale, x_offset, coef:
        ``(n_models, n_features)`` parameter matrices (standardisation,
        centring and projection coefficients, stacked row-wise).
    y_offset, sign:
        ``(n_models,)`` projection intercepts and score sign adjustments.
    accept_nonneg:
        ``(n_models,)`` boolean accept-threshold orientations.
    position_by_id:
        Maps ``id(rule)`` to its row in the stacked matrices, so a flush
        that uses only a subset of the model set can gather its rows
        without rebuilding anything.
    """

    rules: tuple[LinearDecisionRule, ...]
    mean: np.ndarray
    scale: np.ndarray
    x_offset: np.ndarray
    coef: np.ndarray
    y_offset: np.ndarray
    sign: np.ndarray
    accept_nonneg: np.ndarray
    position_by_id: dict[int, int]

    @classmethod
    def build(cls, rules: Sequence[LinearDecisionRule]) -> "FusedStacks":
        """Stack the parameters of *rules* (assumed already id-sorted)."""
        return cls(
            rules=tuple(rules),
            mean=np.stack([rule.mean for rule in rules]),
            scale=np.stack([rule.scale for rule in rules]),
            x_offset=np.stack([rule.x_offset for rule in rules]),
            coef=np.stack([rule.coef for rule in rules]),
            y_offset=np.asarray([rule.y_offset for rule in rules]),
            sign=np.asarray([rule.sign for rule in rules]),
            accept_nonneg=np.asarray(
                [rule.accept_on_nonnegative for rule in rules], dtype=bool
            ),
            position_by_id={id(rule): index for index, rule in enumerate(rules)},
        )


class FusedStackCache:
    """LRU cache of :class:`FusedStacks` keyed by the serving model set.

    Rebuilding the stacked parameter matrices on every flush is the dominant
    cost of a coalesced pass once the einsum itself is cheap (hundreds of
    small per-rule stacking operations per flush).  A serving frontend that
    flushes the same fleet repeatedly reuses one entry for as long as the
    served models do not change: the stacks cover every fusible model the
    flush's scorers *serve* (not just the ones this flush's detected
    contexts happened to select), so per-flush context variation still hits.

    The key is the tuple of the rules' ``id``\\ s in canonical (sorted)
    order — the *serving model-set fingerprint*.  Rules are immutable and
    memoised per trained model, so a retrain, rollback or ``use_context``
    flip yields different rule objects and therefore a different key;
    each entry also holds strong references to its rules, so a key can
    never be recycled by the allocator while its entry is alive.  Explicit
    invalidation (:meth:`clear`) is therefore a memory-hygiene hook — the
    service frontend clears the cache whenever the model registry's
    generation moves — not a correctness requirement.

    Thread-safe: lookups, inserts, eviction and :meth:`clear` serialize on
    an internal lock, because the threaded HTTP transport can drive
    concurrent coalesced flushes for disjoint user sets through one shared
    cache.  (Entry *construction* happens outside the lock; two racing
    misses may both build, and the last insert wins — wasted work, never a
    wrong result, since entries for one key are interchangeable.)

    Parameters
    ----------
    max_entries:
        Bound on distinct model sets kept (least recently used evicted).

    Raises
    ------
    ValueError
        If ``max_entries`` is not positive.
    """

    def __init__(self, max_entries: int = 32) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple[int, ...], FusedStacks]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stacks_for(self, rules: Sequence[LinearDecisionRule]) -> FusedStacks:
        """The stacked parameters of *rules* (assumed id-sorted), cached.

        Returns
        -------
        FusedStacks
            A cached entry when this exact rule set was stacked before,
            otherwise a freshly built (and now cached) one.
        """
        key = tuple(id(rule) for rule in rules)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
        entry = FusedStacks.build(rules)
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return entry

    def clear(self) -> None:
        """Drop every cached entry (hit/miss statistics are kept)."""
        with self._lock:
            self._entries.clear()


def _serving_rules(
    scorers: Sequence[BatchScorer], width: int
) -> list[LinearDecisionRule]:
    """Every fusible *width*-column rule served by the distinct scorers.

    Returned id-sorted (the canonical cache order).  Rules of other widths
    are skipped: they can never score this flush's rows — a *used* model of
    the wrong width is rejected explicitly before gathering — and stacking
    them alongside would be a shape error.
    """
    rules: dict[int, LinearDecisionRule] = {}
    seen: set[int] = set()
    for scorer in scorers:
        if id(scorer) in seen:
            continue
        seen.add(id(scorer))
        for model in scorer.bundle.models.values():
            rule = model.decision_rule() if hasattr(model, "decision_rule") else None
            if rule is not None and rule.coef.shape[-1] == width:
                rules[id(rule)] = rule
    return sorted(rules.values(), key=id)


@dataclass(frozen=True, eq=False)
class StackedScoreResult:
    """Columnar outcome of one coalesced scoring pass (no per-request split).

    The zero-copy serving path keeps results in this block form end-to-end:
    the binary wire codec frames the ``scores`` / ``accepted`` /
    ``model_context_codes`` columns directly, so per-request Python objects
    are only ever built for callers that ask for them
    (:meth:`result_for` / :meth:`results`).

    ``eq=False``: holds NumPy arrays (see
    :class:`~repro.service.protocol.EnrollRequest` for the rationale).

    Attributes
    ----------
    scores, accepted:
        One entry per window of the combined batch, in submission order.
    model_context_codes:
        ``int8`` context code of the model that actually scored each window
        (after fall-back resolution) — decode with :func:`decode_contexts`.
    model_versions:
        One bundle version per *request*.
    offsets:
        Request slice boundaries: request *i* owns rows
        ``offsets[i]:offsets[i + 1]``.
    """

    scores: np.ndarray
    accepted: np.ndarray
    model_context_codes: np.ndarray
    model_versions: np.ndarray
    offsets: np.ndarray

    @property
    def n_requests(self) -> int:
        return len(self.model_versions)

    def __len__(self) -> int:
        return len(self.scores)

    def result_for(self, index: int) -> BatchScoreResult:
        """Request *index*'s slice as a per-request :class:`BatchScoreResult`."""
        start, stop = int(self.offsets[index]), int(self.offsets[index + 1])
        return BatchScoreResult(
            scores=self.scores[start:stop],
            accepted=self.accepted[start:stop],
            model_contexts=decode_contexts(self.model_context_codes[start:stop]),
            model_version=int(self.model_versions[index]),
        )

    def results(self) -> list[BatchScoreResult]:
        """Every request's slice, in request order."""
        return [self.result_for(index) for index in range(self.n_requests)]


def score_stacked(
    scorers: Sequence[BatchScorer],
    stacked: np.ndarray,
    lengths: Sequence[int] | np.ndarray,
    codes: np.ndarray,
    stack_cache: FusedStackCache | None = None,
) -> StackedScoreResult:
    """Score an already-stacked fleet batch in one coalesced pass.

    The columnar twin of :func:`score_requests` (which delegates here):
    instead of per-request feature arrays, the caller hands one contiguous
    ``(total_windows, n_features)`` block plus per-request *lengths* —
    exactly the shape the binary wire codec decodes a batch frame into with
    :func:`np.frombuffer` views — so the serving hot path never
    concatenates, copies or materializes per-request objects.

    Parameters
    ----------
    scorers:
        One :class:`BatchScorer` per request (duplicates allowed).
    stacked:
        The combined feature rows, request slices back to back.
    lengths:
        Windows per request; must sum to ``len(stacked)``.
    codes:
        Per-window ``int8`` context codes (already encoded; label input is
        accepted and encoded via :func:`encode_contexts`).
    stack_cache:
        Optional :class:`FusedStackCache` reused across flushes.

    Returns
    -------
    StackedScoreResult
        Columnar scores/decisions plus the request slice offsets.  Scores
        and decisions are bit-for-bit identical to scoring each request
        through its own scorer.

    Raises
    ------
    ValueError
        If the shapes disagree, a context code is out of range, or the
        feature width does not match a selected model.
    """
    stacked = canonicalize_rows(stacked)
    lengths = np.asarray(lengths, dtype=np.intp)
    n_requests = len(lengths)
    if len(scorers) != n_requests:
        raise ValueError(
            f"got {len(scorers)} scorers for {n_requests} request lengths"
        )
    if len(lengths) and int(lengths.min()) < 0:
        raise ValueError("request lengths must be non-negative")
    offsets = offsets_from_lengths(lengths)
    total = int(offsets[-1])
    if total != len(stacked):
        raise ValueError(
            f"request lengths sum to {total} but the stacked batch has "
            f"{len(stacked)} rows"
        )
    codes = encode_contexts(codes)
    if len(codes) != total:
        raise ValueError(
            f"got {total} stacked feature rows but {len(codes)} context codes"
        )
    model_versions = np.fromiter(
        (scorer.bundle.version for scorer in scorers),
        dtype=np.int64,
        count=n_requests,
    )
    if total == 0:
        return StackedScoreResult(
            scores=np.empty(0),
            accepted=np.empty(0, dtype=bool),
            model_context_codes=np.empty(0, dtype=np.int8),
            model_versions=model_versions,
            offsets=offsets,
        )

    # Resolve every row to its model with array gathers alone.  Each
    # distinct scorer contributes one row of a code→slot lookup matrix
    # (its memoised code→model table mapped onto call-local model slots —
    # O(distinct scorers) cheap Python); the whole fleet batch then
    # resolves in two vectorized gathers: repeat each request's lut row
    # over its windows, and index the matrix with (lut row, context code)
    # pairs.  No per-row Python anywhere.
    distinct_models: list[ScorableModel] = []
    slot_by_model_id: dict[int, int] = {}
    lut_rows: list[list[int]] = []
    lut_row_by_scorer: dict[int, int] = {}
    request_lut_rows = np.empty(n_requests, dtype=np.intp)
    for index in range(n_requests):
        if not lengths[index]:
            request_lut_rows[index] = 0
            continue
        scorer = scorers[index]
        lut_row = lut_row_by_scorer.get(id(scorer))
        if lut_row is None:
            entry = []
            for model in scorer.model_by_code():
                slot = slot_by_model_id.get(id(model))
                if slot is None:
                    slot = slot_by_model_id[id(model)] = len(distinct_models)
                    distinct_models.append(model)
                entry.append(slot)
            lut_row = lut_row_by_scorer[id(scorer)] = len(lut_rows)
            lut_rows.append(entry)
        request_lut_rows[index] = lut_row
    lut_matrix = np.asarray(lut_rows, dtype=np.intp)
    row_slots = lut_matrix[np.repeat(request_lut_rows, lengths), codes]
    code_by_slot = np.fromiter(
        (CONTEXT_CODES[model.context] for model in distinct_models),
        dtype=np.int8,
        count=len(distinct_models),
    )
    model_context_codes = code_by_slot[row_slots]

    scores = np.empty(total)
    accepted = np.empty(total, dtype=bool)

    # Split the *used* model slots into fusible (affine decision rule) and
    # fallback — an O(models) loop, never O(rows).
    rule_by_slot: list[LinearDecisionRule | None] = [None] * len(distinct_models)
    fusible = np.zeros(len(distinct_models), dtype=bool)
    used_slots = np.unique(row_slots)
    for slot in used_slots:
        model = distinct_models[slot]
        rule = model.decision_rule() if hasattr(model, "decision_rule") else None
        if rule is None:
            continue
        if rule.coef.shape[-1] != stacked.shape[1]:
            # The fallback path rejects this inside scaler.transform;
            # the fused gather must refuse too, or NumPy broadcasting
            # (e.g. width-1 rows against d-wide parameters) would
            # silently score — and possibly accept — malformed probes.
            raise ValueError(
                f"feature rows have {stacked.shape[1]} columns but the "
                f"model for context {model.context.value!r} was trained "
                f"on {rule.coef.shape[-1]} features"
            )
        rule_by_slot[slot] = rule
        fusible[slot] = True

    # Fallback models (probability-vote forests, non-linear kernels): one
    # vectorized batch_decisions call per model, shared across requests.
    all_fusible = bool(fusible[used_slots].all())
    if not all_fusible:
        fallback_rows = np.flatnonzero(~fusible[row_slots])
        for slot, group in _rows_by_slot(row_slots[fallback_rows]):
            rows = fallback_rows[group]
            model = distinct_models[slot]
            scores[rows], accepted[rows] = model.batch_decisions(stacked[rows])

    if fusible.any():
        if stack_cache is not None:
            # Stack the whole serving model set, not just this flush's used
            # subset: the fingerprint then survives per-flush variation in
            # which contexts the windows resolved to, so repeated fleet
            # flushes keep hitting one entry until the served models change.
            stacks = stack_cache.stacks_for(_serving_rules(scorers, stacked.shape[1]))
        else:
            stacks = FusedStacks.build(
                [rule_by_slot[slot] for slot in used_slots if fusible[slot]]
            )
        # One parameter row per model, gathered out to one row per window:
        # the whole fleet batch then reduces in a single einsum.  Each
        # elementwise operation matches the per-model path exactly
        # (standardise, centre, project, sign-adjust), so the fused scores
        # are bit-for-bit identical.
        position_by_slot = np.zeros(len(distinct_models), dtype=np.intp)
        for slot in used_slots:
            if fusible[slot]:
                position_by_slot[slot] = stacks.position_by_id[id(rule_by_slot[slot])]
        if all_fusible:
            row_index: np.ndarray | slice = slice(None)
            rows_features = stacked
            gather = position_by_slot[row_slots]
        else:
            row_index = np.flatnonzero(fusible[row_slots])
            rows_features = stacked[row_index]
            gather = position_by_slot[row_slots[row_index]]
        mean = stacks.mean[gather]
        scale = stacks.scale[gather]
        x_offset = stacks.x_offset[gather]
        coef = stacks.coef[gather]
        y_offset = stacks.y_offset[gather]
        sign = stacks.sign[gather]
        accept_nonneg = stacks.accept_nonneg[gather]
        centred = (rows_features - mean) / scale - x_offset
        raw = np.einsum("ij,ij->i", centred, coef) + y_offset
        scores[row_index] = sign * raw
        accepted[row_index] = np.where(accept_nonneg, raw >= 0.0, raw < 0.0)

    return StackedScoreResult(
        scores=scores,
        accepted=accepted,
        model_context_codes=model_context_codes,
        model_versions=model_versions,
        offsets=offsets,
    )


def score_requests(
    scorers: Sequence[BatchScorer],
    features_list: Sequence[np.ndarray],
    contexts_list: Sequence[Sequence[CoarseContext] | np.ndarray],
    stack_cache: FusedStackCache | None = None,
) -> list[BatchScoreResult]:
    """Score many concurrent authenticate requests in one coalesced pass.

    ``scorers[i]`` scores request *i*'s ``(features_list[i],
    contexts_list[i])`` windows; the same :class:`BatchScorer` object may
    appear many times (several requests for one user's served version).
    Context entries may be label sequences or already-encoded ``int8`` code
    arrays (:func:`encode_contexts`); the serving path passes codes, so
    resolving every window to its model is a pure array gather — no per-row
    Python anywhere.  The per-request inputs are stacked into one fleet
    batch and scored by :func:`score_stacked` (callers that already hold a
    contiguous block — the binary wire codec — call it directly and skip
    the copy).

    Every row in the combined batch whose resolved model exposes a
    :class:`~repro.ml.base.LinearDecisionRule` — the paper's kernel-ridge
    configuration, and every other classifier whose prediction is a
    threshold on an affine projection — is scored in a *single* fused
    gather-and-einsum over the entire fleet batch, regardless of how many
    users and model versions are involved.  Rows whose models cannot be
    fused (e.g. probability-vote forests, non-linear kernels) fall back to
    one vectorized :meth:`~ScorableModel.batch_decisions` call per model,
    still shared across requests.

    Scores and decisions are bit-for-bit identical to calling
    ``scorers[i].score(...)`` per request: the fused pass performs exactly
    the same elementwise standardisation, centering and per-row einsum
    reduction the per-model path performs.

    Parameters
    ----------
    scorers, features_list, contexts_list:
        One entry per concurrent request (equal lengths required).
    stack_cache:
        Optional :class:`FusedStackCache`.  When given, the stacked
        parameter matrices of the fused model set are reused across calls
        instead of being rebuilt on every flush; results are identical
        either way because the cached stacks are built from the very same
        immutable rules.

    Returns
    -------
    list[BatchScoreResult]
        One result per request, in request order.

    Raises
    ------
    ValueError
        If the three sequences disagree in length, a request's features and
        contexts disagree in length, or a request's feature width does not
        match its selected model.
    """
    if not (len(scorers) == len(features_list) == len(contexts_list)):
        raise ValueError(
            f"got {len(scorers)} scorers for {len(features_list)} feature "
            f"batches and {len(contexts_list)} context batches"
        )
    n_requests = len(scorers)
    batches: list[tuple[np.ndarray, np.ndarray]] = []
    for index in range(n_requests):
        try:
            batches.append(_validate_batch(features_list[index], contexts_list[index]))
        except ValueError as error:
            raise ValueError(f"request {index}: {error}") from None
    widths = {features.shape[1] for features, _ in batches if len(features)}
    if len(widths) > 1:
        # Mixed feature schemas cannot share one stacked batch; score each
        # request through its own scorer (identical results, just no fusion).
        return [scorers[index].score(*batches[index]) for index in range(n_requests)]

    lengths = np.fromiter(
        (len(features) for features, _ in batches), dtype=np.intp, count=n_requests
    )
    if not int(lengths.sum()):
        return [
            BatchScoreResult(
                scores=np.empty(0),
                accepted=np.empty(0, dtype=bool),
                model_contexts=tuple(),
                model_version=scorers[index].bundle.version,
            )
            for index in range(n_requests)
        ]
    stacked = np.vstack([features for features, _ in batches if len(features)])
    codes = np.concatenate([codes for _, codes in batches])
    return score_stacked(scorers, stacked, lengths, codes, stack_cache).results()


def score_fleet(
    scorers: dict[str, BatchScorer],
    requests: Sequence[tuple[str, np.ndarray, Sequence[CoarseContext]]],
) -> dict[str, BatchScoreResult]:
    """Score a batch of per-user requests against their respective models.

    Parameters
    ----------
    scorers:
        One :class:`BatchScorer` per user id.
    requests:
        ``(user_id, features, contexts)`` triples; multiple requests for the
        same user are concatenated and scored in one pass.

    Returns
    -------
    Mapping from user id to that user's combined batch result.
    """
    grouped_rows: dict[str, list[np.ndarray]] = {}
    grouped_codes: dict[str, list[np.ndarray]] = {}
    for index, (user_id, features, contexts) in enumerate(requests):
        if user_id not in scorers:
            raise KeyError(f"no scorer available for user {user_id!r}")
        # Validate per request: mismatches that cancel out across requests
        # for the same user would otherwise silently score windows under
        # the wrong contexts.
        try:
            rows, codes = _validate_batch(features, contexts)
        except ValueError as error:
            raise ValueError(
                f"request {index} for user {user_id!r}: {error}"
            ) from None
        grouped_rows.setdefault(user_id, []).append(rows)
        grouped_codes.setdefault(user_id, []).append(codes)
    return {
        user_id: scorers[user_id].score(
            np.vstack(grouped_rows[user_id]),
            np.concatenate(grouped_codes[user_id]),
        )
        for user_id in grouped_rows
    }
