"""Confidence-score monitoring and automatic retraining (Section V-I, Fig. 7).

The monitor tracks the confidence score ``CS(k) = x_k^T w*`` of windows that
were *accepted* as the legitimate user.  When the (smoothed) score stays
below the threshold :math:`\\epsilon_{CS}` for a sustained period, the user's
behaviour has drifted and the system uploads fresh feature vectors to the
cloud and retrains.  Rejected windows never feed the monitor, so an attacker
— who is locked out within a few windows — cannot trigger retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RetrainingDecision:
    """Whether retraining should run, and why."""

    should_retrain: bool
    reason: str
    mean_recent_score: float
    days_below_threshold: float


@dataclass
class ConfidenceScoreMonitor:
    """Sliding confidence-score tracker that triggers retraining.

    Parameters
    ----------
    threshold:
        :math:`\\epsilon_{CS}`; the paper uses 0.2.
    required_days_below:
        How long the daily mean score must stay below the threshold before
        retraining triggers (brief dips, as in the paper's Figure 7, must not
        trigger it).
    smoothing_window:
        Number of recent observations forming the "recent score" estimate.
    """

    threshold: float = 0.2
    required_days_below: float = 1.0
    smoothing_window: int = 20
    _timestamps_days: list[float] = field(default_factory=list)
    _scores: list[float] = field(default_factory=list)
    _below_since: float | None = None
    retraining_events_days: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive(self.required_days_below, "required_days_below")
        if self.smoothing_window < 1:
            raise ValueError("smoothing_window must be >= 1")

    # ------------------------------------------------------------------ #

    def observe(self, day: float, confidence_score: float, accepted: bool = True) -> RetrainingDecision:
        """Record one window's confidence score while the device is in use.

        Parameters
        ----------
        day:
            Time of the observation in days since enrolment.
        confidence_score:
            The classifier decision value for the window.
        accepted:
            Whether the window was accepted (informational).  Rejected windows
            are recorded too: a drifting legitimate user produces exactly the
            low-score windows the monitor must see.  Attackers cannot exploit
            this because the response module locks the device within a couple
            of windows and the system stops feeding the monitor once locked
            (and a locked-out attacker can never keep scores low for the
            required multi-day period anyway, Section V-I).
        """
        if self._timestamps_days and day < self._timestamps_days[-1]:
            raise ValueError("observations must arrive in non-decreasing time order")
        self._timestamps_days.append(day)
        self._scores.append(float(confidence_score))
        recent = self.mean_recent_score()
        if recent < self.threshold:
            if self._below_since is None:
                self._below_since = day
        else:
            self._below_since = None
        return self.decision(day)

    def mean_recent_score(self) -> float:
        """Mean of the last *smoothing_window* observed scores."""
        if not self._scores:
            return float("inf")
        window = self._scores[-self.smoothing_window :]
        return float(np.mean(window))

    def days_below_threshold(self, day: float) -> float:
        """How long the smoothed score has been continuously below threshold."""
        if self._below_since is None:
            return 0.0
        return max(0.0, day - self._below_since)

    def decision(self, day: float) -> RetrainingDecision:
        """Current retraining decision at time *day*."""
        recent = self.mean_recent_score()
        below_for = self.days_below_threshold(day)
        should = below_for >= self.required_days_below
        if should:
            reason = (
                f"mean confidence {recent:.3f} below threshold {self.threshold} "
                f"for {below_for:.2f} days"
            )
        elif self._below_since is not None:
            reason = "confidence below threshold but not yet for the required period"
        else:
            reason = "confidence healthy"
        return RetrainingDecision(
            should_retrain=should,
            reason=reason,
            mean_recent_score=recent if np.isfinite(recent) else 0.0,
            days_below_threshold=below_for,
        )

    def mark_retrained(self, day: float) -> None:
        """Record that retraining completed; resets the drift tracking."""
        self.retraining_events_days.append(day)
        self._below_since = None
        # Historical scores produced by the stale model are no longer
        # representative of the new classifier, so start fresh.
        self._timestamps_days.clear()
        self._scores.clear()

    def history(self) -> tuple[np.ndarray, np.ndarray]:
        """The recorded (days, scores) series for plotting Figure 7."""
        return np.asarray(self._timestamps_days), np.asarray(self._scores)
