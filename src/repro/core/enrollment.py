"""Enrolment phase: collect the owner's data, then train the first models.

Section IV-B: after the user opts in, the system keeps extracting labelled
feature vectors into a protected buffer until enough measurements have been
observed (~800 windows), then trains the per-context authentication models in
the cloud and switches to the continuous-authentication phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SmarterYouConfig
from repro.devices.cloud import AuthenticationServer, TrainedModelBundle
from repro.datasets.collection import SessionData
from repro.features.vector import FeatureMatrix, stack_matrices
from repro.sensors.types import CoarseContext
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnrollmentResult:
    """Outcome of the enrolment phase.

    Attributes
    ----------
    bundle:
        The trained per-context model bundle downloaded from the cloud.
    windows_collected:
        Number of feature windows the owner contributed.
    windows_per_context:
        Breakdown of the collected windows by coarse context.
    """

    bundle: TrainedModelBundle
    windows_collected: int
    windows_per_context: dict[CoarseContext, int]


@dataclass
class EnrollmentPhase:
    """Buffers the owner's feature windows until the training target is met.

    Parameters
    ----------
    config:
        System configuration (window size, target window count, device set).
    server:
        The cloud authentication server that will train the models.
    owner_id:
        Identifier of the legitimate user being enrolled.
    """

    config: SmarterYouConfig
    server: AuthenticationServer
    owner_id: str
    _buffer: list[FeatureMatrix] = field(default_factory=list)

    # ------------------------------------------------------------------ #

    def add_session(self, session: SessionData) -> int:
        """Extract features from an owner session into the protected buffer.

        Returns the total number of buffered windows after the addition.
        """
        if session.user_id != self.owner_id:
            raise ValueError(
                f"session belongs to {session.user_id!r}, not the enrolling owner "
                f"{self.owner_id!r}"
            )
        matrix = session.authentication_features(
            self.config.window_seconds, spec=self.config.feature_spec
        )
        if len(matrix):
            self._buffer.append(matrix)
        return self.windows_collected

    def add_matrix(self, matrix: FeatureMatrix) -> int:
        """Add pre-extracted owner feature windows to the buffer."""
        if matrix.user_ids and any(uid != self.owner_id for uid in matrix.user_ids):
            raise ValueError("matrix contains rows not belonging to the enrolling owner")
        if len(matrix):
            self._buffer.append(matrix)
        return self.windows_collected

    @property
    def windows_collected(self) -> int:
        """Number of owner windows currently buffered."""
        return sum(len(matrix) for matrix in self._buffer)

    @property
    def is_complete(self) -> bool:
        """Whether enough windows have been observed to train (Section V-F3)."""
        return self.windows_collected >= self.config.target_enrollment_windows

    def windows_per_context(self) -> dict[CoarseContext, int]:
        """Buffered window counts per coarse context."""
        counts = {context: 0 for context in CoarseContext}
        for matrix in self._buffer:
            for label in matrix.contexts:
                counts[CoarseContext(label)] += 1
        return counts

    # ------------------------------------------------------------------ #

    def finalize(self, allow_partial: bool = False) -> EnrollmentResult:
        """Upload the buffer to the cloud and train the per-context models.

        Parameters
        ----------
        allow_partial:
            Train even if the target window count has not been reached
            (useful for scaled-down experiments); otherwise a partial buffer
            raises ``RuntimeError``.
        """
        check_positive(self.config.target_enrollment_windows, "target_enrollment_windows")
        if not self._buffer:
            raise RuntimeError("no owner data collected; cannot finalize enrolment")
        if not self.is_complete and not allow_partial:
            raise RuntimeError(
                f"only {self.windows_collected} of "
                f"{self.config.target_enrollment_windows} required windows collected"
            )
        combined = stack_matrices(self._buffer)
        # The cloud server enforces its own per-context minimum on the full
        # stored history; here it is enough that the buffer contributes at
        # least one window per trained context (retraining uploads small
        # incremental batches on top of the already-stored enrolment data).
        contexts_present = tuple(
            context
            for context, count in self.windows_per_context().items()
            if count > 0
        )
        if not contexts_present:
            raise RuntimeError("the enrolment buffer contains no usable windows")
        if not self.config.use_context:
            # A single unified model: collapse every window onto one context
            # key so the server trains one classifier from all of them.
            combined = FeatureMatrix(
                values=combined.values,
                feature_names=list(combined.feature_names),
                user_ids=list(combined.user_ids),
                contexts=[CoarseContext.STATIONARY.value] * len(combined),
            )
            contexts_present = (CoarseContext.STATIONARY,)
        self.server.upload_features(self.owner_id, combined)
        bundle = self.server.train_authentication_models(
            self.owner_id, contexts=contexts_present
        )
        return EnrollmentResult(
            bundle=bundle,
            windows_collected=self.windows_collected,
            windows_per_context=self.windows_per_context(),
        )
