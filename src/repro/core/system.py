"""The SmarterYou facade: end-to-end implicit continuous authentication.

Ties the architecture of Figure 1 together:

* the **enrolment phase** buffers the owner's feature windows and has the
  cloud server train per-context models;
* the **continuous-authentication phase** takes each new session, detects the
  context of every window, scores it with the matching model, feeds the
  decision to the response module and the confidence-score monitor;
* **retraining** re-uploads fresh owner data and swaps in the new model
  bundle when drift is detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.authenticator import AuthenticationDecision, ContextualAuthenticator
from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector
from repro.core.enrollment import EnrollmentPhase, EnrollmentResult
from repro.core.response import DeviceState, ResponseAction, ResponseModule
from repro.core.retraining import ConfidenceScoreMonitor
from repro.datasets.collection import SensorDataset, SessionData
from repro.devices.cloud import AuthenticationServer
from repro.features.vector import FeatureMatrix
from repro.sensors.types import CoarseContext, DeviceType


@dataclass
class WindowOutcome:
    """Everything the system produced for one authenticated window."""

    decision: AuthenticationDecision
    action: ResponseAction
    detected_context: CoarseContext


@dataclass
class SmarterYou:
    """A deployed SmarterYou instance protecting one legitimate owner.

    Parameters
    ----------
    config:
        Design parameters (window size, device set, context use, thresholds).
    server:
        The cloud authentication server with the anonymised other-user pool.
    context_detector:
        A trained user-agnostic context detector.
    """

    config: SmarterYouConfig
    server: AuthenticationServer
    context_detector: ContextDetector
    owner_id: str | None = None
    authenticator: ContextualAuthenticator | None = None
    response: ResponseModule = field(default_factory=ResponseModule)
    monitor: ConfidenceScoreMonitor = field(default_factory=ConfidenceScoreMonitor)

    def __post_init__(self) -> None:
        self.response = ResponseModule(
            lockout_consecutive_rejections=self.config.lockout_consecutive_rejections
        )
        self.monitor = ConfidenceScoreMonitor(
            threshold=self.config.confidence_threshold,
            required_days_below=self.config.confidence_window_days,
        )

    # ------------------------------------------------------------------ #
    # enrolment
    # ------------------------------------------------------------------ #

    def enroll(
        self, owner_id: str, owner_sessions: Sequence[SessionData], allow_partial: bool = True
    ) -> EnrollmentResult:
        """Enrol *owner_id* using recorded owner sessions.

        The cloud server must already hold other users' anonymised feature
        data (it provides the negative class); populate it with
        :meth:`contribute_other_users` or direct ``server.upload_features``
        calls before enrolling.
        """
        enrollment = EnrollmentPhase(config=self.config, server=self.server, owner_id=owner_id)
        for session in owner_sessions:
            enrollment.add_session(session)
        result = enrollment.finalize(allow_partial=allow_partial)
        self.owner_id = owner_id
        self.authenticator = ContextualAuthenticator(
            result.bundle, use_context=self.config.use_context
        )
        return result

    def contribute_other_users(self, dataset: SensorDataset, exclude: str | None = None) -> int:
        """Upload every non-owner user's feature windows to the server.

        Returns the number of users whose data was uploaded.
        """
        uploaded = 0
        for user_id in dataset.user_ids():
            if exclude is not None and user_id == exclude:
                continue
            matrices = []
            for session in dataset.sessions_for(user_id):
                matrix = session.authentication_features(
                    self.config.window_seconds, spec=self.config.feature_spec
                )
                if len(matrix):
                    matrices.append(matrix)
            if not matrices:
                continue
            for matrix in matrices:
                self.server.upload_features(user_id, matrix)
            uploaded += 1
        return uploaded

    # ------------------------------------------------------------------ #
    # continuous authentication
    # ------------------------------------------------------------------ #

    def _require_enrolled(self) -> ContextualAuthenticator:
        if self.authenticator is None or self.owner_id is None:
            raise RuntimeError("no owner enrolled; call enroll() first")
        return self.authenticator

    def _session_features(
        self, session: SessionData, window_seconds: float
    ) -> tuple[FeatureMatrix, FeatureMatrix]:
        """Authentication matrix and phone-only matrix for a session."""
        auth = session.authentication_features(window_seconds, spec=self.config.feature_spec)
        phone = session.device_features(
            DeviceType.SMARTPHONE, window_seconds, spec=self.config.phone_feature_spec
        )
        return auth, phone

    def detect_contexts(self, session: SessionData, window_seconds: float | None = None) -> list[CoarseContext]:
        """Detect the coarse context of every window of a session."""
        window = window_seconds or self.config.window_seconds
        _, phone = self._session_features(session, window)
        if len(phone) == 0:
            return []
        return self.context_detector.detect(phone.values)

    def process_session(
        self, session: SessionData, window_seconds: float | None = None, day: float = 0.0
    ) -> list[WindowOutcome]:
        """Run the full pipeline on a session: detect, authenticate, respond.

        Every window produces a :class:`WindowOutcome`; accepted windows also
        feed the confidence-score monitor (time-stamped at *day*).
        """
        authenticator = self._require_enrolled()
        window = window_seconds or self.config.window_seconds
        auth, phone = self._session_features(session, window)
        n_windows = min(len(auth), len(phone))
        outcomes: list[WindowOutcome] = []
        if n_windows == 0:
            return outcomes
        contexts = self.context_detector.detect(phone.values[:n_windows])
        # Score the whole session in one vectorized pass (the decision for a
        # window depends only on its features and context, not on response
        # state), then replay the decisions through the stateful response
        # module and monitor in order.
        decisions = authenticator.authenticate_many(auth.values[:n_windows], contexts)
        for index in range(n_windows):
            was_locked = self.response.state is DeviceState.LOCKED
            decision = decisions[index]
            action = self.response.handle(decision)
            # The monitor only sees windows processed while the device was
            # usable; once the response module has locked the device (e.g. an
            # attacker holds it), no further scores reach the monitor.
            if not was_locked:
                self.monitor.observe(day, decision.confidence_score, accepted=decision.accepted)
            outcomes.append(
                WindowOutcome(
                    decision=decision, action=action, detected_context=contexts[index]
                )
            )
        return outcomes

    def authenticate_session(
        self, session: SessionData, window_seconds: float | None = None
    ) -> list[bool]:
        """Accept/reject decision per window, without touching response state.

        This is the read-only entry point used by the attack-evaluation code
        (:func:`repro.attacks.evaluation.evaluate_detection_time`).
        """
        authenticator = self._require_enrolled()
        window = window_seconds or self.config.window_seconds
        auth, phone = self._session_features(session, window)
        n_windows = min(len(auth), len(phone))
        if n_windows == 0:
            return []
        contexts = self.context_detector.detect(phone.values[:n_windows])
        decisions = authenticator.authenticate_many(auth.values[:n_windows], contexts)
        return [decision.accepted for decision in decisions]

    def confidence_trace(
        self, session: SessionData, window_seconds: float | None = None
    ) -> np.ndarray:
        """Confidence score of every window of a session (Figure 7's y-axis)."""
        authenticator = self._require_enrolled()
        window = window_seconds or self.config.window_seconds
        auth, phone = self._session_features(session, window)
        n_windows = min(len(auth), len(phone))
        if n_windows == 0:
            return np.array([])
        contexts = self.context_detector.detect(phone.values[:n_windows])
        return authenticator.confidence_scores(auth.values[:n_windows], contexts)

    # ------------------------------------------------------------------ #
    # retraining
    # ------------------------------------------------------------------ #

    def should_retrain(self, day: float) -> bool:
        """Whether the confidence-score monitor currently demands retraining."""
        return self.monitor.decision(day).should_retrain

    def retrain(self, fresh_owner_sessions: Sequence[SessionData], day: float = 0.0) -> EnrollmentResult:
        """Upload fresh owner data, retrain in the cloud and swap the models."""
        authenticator = self._require_enrolled()
        enrollment = EnrollmentPhase(
            config=self.config, server=self.server, owner_id=authenticator.user_id
        )
        for session in fresh_owner_sessions:
            enrollment.add_session(session)
        result = enrollment.finalize(allow_partial=True)
        self.authenticator = ContextualAuthenticator(
            result.bundle, use_context=self.config.use_context
        )
        self.monitor.mark_retrained(day)
        return result
