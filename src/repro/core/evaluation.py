"""Offline evaluation of authentication configurations (Section V protocol).

The paper evaluates every design alternative with the same protocol: for each
target user, build a binary problem (target user's windows vs. all other
users' windows), run stratified 10-fold cross-validation, compute FRR / FAR /
accuracy, and average over users.  With per-context models the protocol runs
separately per coarse context and the per-context results are combined
weighted by window counts.  This module implements that protocol once so that
Table VI, Table VII, Figure 4 and Figure 5 all share it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.datasets.collection import SensorDataset
from repro.features.vector import FeatureMatrix, FeatureVectorSpec
from repro.ml.base import BaseClassifier, clone
from repro.ml.kernel_ridge import KernelRidgeClassifier
from repro.ml.metrics import AuthenticationMetrics, authentication_metrics
from repro.ml.model_selection import StratifiedKFold
from repro.ml.preprocessing import StandardScaler
from repro.sensors.types import CoarseContext, DeviceType
from repro.utils.rng import RandomState, derive_rng

#: Labels of the binary authentication problem.
GENUINE = "legitimate"
IMPOSTOR = "other"


def default_authentication_classifier() -> BaseClassifier:
    """The paper's default classifier (linear-kernel KRR)."""
    return KernelRidgeClassifier(ridge=1.0, kernel="linear")


@dataclass(frozen=True)
class EvaluationConfig:
    """One point of the design space to evaluate.

    Attributes
    ----------
    devices:
        Device set contributing features (phone, watch, or both).
    window_seconds:
        Analysis window length.
    use_context:
        Whether per-context models are trained (otherwise one unified model).
    max_windows_per_user:
        Optional cap on windows per user per context — this is the paper's
        "data size" axis (Figure 5).
    n_folds:
        Cross-validation folds (paper: 10).
    classifier_factory:
        Factory for the classifier under test (Table VI swaps this).
    """

    devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH)
    window_seconds: float = 6.0
    use_context: bool = True
    max_windows_per_user: int | None = None
    n_folds: int = 10
    classifier_factory: Callable[[], BaseClassifier] = default_authentication_classifier

    @property
    def feature_spec(self) -> FeatureVectorSpec:
        """Feature layout implied by the device set."""
        return FeatureVectorSpec(devices=self.devices)


@dataclass
class UserEvaluation:
    """Per-user evaluation result, optionally broken down by context."""

    user_id: str
    overall: AuthenticationMetrics
    per_context: dict[CoarseContext, AuthenticationMetrics] = field(default_factory=dict)


@dataclass
class EvaluationResult:
    """Aggregate result of evaluating one configuration over all users."""

    config: EvaluationConfig
    per_user: list[UserEvaluation]

    @property
    def frr(self) -> float:
        """Mean false reject rate over users."""
        return float(np.mean([user.overall.frr for user in self.per_user]))

    @property
    def far(self) -> float:
        """Mean false accept rate over users."""
        return float(np.mean([user.overall.far for user in self.per_user]))

    @property
    def accuracy(self) -> float:
        """Mean accuracy over users."""
        return float(np.mean([user.overall.accuracy for user in self.per_user]))

    def context_metrics(self, context: CoarseContext) -> AuthenticationMetrics:
        """Mean metrics over users for one context (Figure 4's per-context curves)."""
        selected = [
            user.per_context[context] for user in self.per_user if context in user.per_context
        ]
        if not selected:
            raise KeyError(f"no per-context results for {context.value}")
        return AuthenticationMetrics(
            frr=float(np.mean([metrics.frr for metrics in selected])),
            far=float(np.mean([metrics.far for metrics in selected])),
            accuracy=float(np.mean([metrics.accuracy for metrics in selected])),
            n_genuine=int(np.sum([metrics.n_genuine for metrics in selected])),
            n_impostor=int(np.sum([metrics.n_impostor for metrics in selected])),
        )

    def summary(self) -> dict[str, float]:
        """The FRR / FAR / accuracy triple as percentages."""
        return {
            "FRR%": 100.0 * self.frr,
            "FAR%": 100.0 * self.far,
            "Accuracy%": 100.0 * self.accuracy,
        }


def _subsample(values: np.ndarray, cap: int | None, rng: np.random.Generator) -> np.ndarray:
    if cap is None or len(values) <= cap:
        return values
    keep = rng.choice(len(values), size=cap, replace=False)
    return values[np.sort(keep)]


def _cross_validated_metrics(
    positives: np.ndarray,
    negatives: np.ndarray,
    config: EvaluationConfig,
    seed: RandomState,
) -> AuthenticationMetrics | None:
    """Binary CV for one (user, context) cell; None when data is insufficient.

    The negative (other-users) pool is subsampled to the size of the positive
    class so that FRR and FAR are measured on a balanced problem; without
    this, the many-against-one imbalance would push every classifier toward
    rejecting the legitimate user (huge FRR, tiny FAR), which is not the
    paper's protocol.
    """
    rng = derive_rng(seed, "balance", len(positives), len(negatives))
    if len(negatives) > len(positives):
        keep = rng.choice(len(negatives), size=len(positives), replace=False)
        negatives = negatives[np.sort(keep)]
    n_folds = config.n_folds
    if len(positives) < n_folds or len(negatives) < n_folds:
        n_folds = max(2, min(len(positives), len(negatives)))
    if len(positives) < 2 or len(negatives) < 2:
        return None
    X = np.vstack([positives, negatives])
    y = np.array([GENUINE] * len(positives) + [IMPOSTOR] * len(negatives))
    splitter = StratifiedKFold(
        n_splits=n_folds, shuffle=True, random_state=derive_rng(seed, "cv", len(X))
    )
    all_true: list[str] = []
    all_pred: list[str] = []
    for train_indices, test_indices in splitter.split(X, y):
        scaler = StandardScaler().fit(X[train_indices])
        model = clone(config.classifier_factory())
        model.fit(scaler.transform(X[train_indices]), y[train_indices])
        predictions = model.predict(scaler.transform(X[test_indices]))
        all_true.extend(y[test_indices])
        all_pred.extend(predictions)
    return authentication_metrics(all_true, all_pred, positive_label=GENUINE)


def _combine_contexts(
    per_context: dict[CoarseContext, AuthenticationMetrics]
) -> AuthenticationMetrics:
    """Window-count-weighted combination of per-context metrics."""
    total_genuine = sum(metrics.n_genuine for metrics in per_context.values())
    total_impostor = sum(metrics.n_impostor for metrics in per_context.values())
    frr = sum(metrics.frr * metrics.n_genuine for metrics in per_context.values()) / max(
        total_genuine, 1
    )
    far = sum(metrics.far * metrics.n_impostor for metrics in per_context.values()) / max(
        total_impostor, 1
    )
    total = total_genuine + total_impostor
    accuracy = (
        sum(
            metrics.accuracy * (metrics.n_genuine + metrics.n_impostor)
            for metrics in per_context.values()
        )
        / max(total, 1)
    )
    return AuthenticationMetrics(
        frr=float(frr),
        far=float(far),
        accuracy=float(accuracy),
        n_genuine=total_genuine,
        n_impostor=total_impostor,
    )


def evaluate_configuration(
    dataset: SensorDataset,
    config: EvaluationConfig,
    users: Sequence[str] | None = None,
    seed: RandomState = 0,
) -> EvaluationResult:
    """Evaluate one design-space configuration with the paper's protocol.

    Parameters
    ----------
    dataset:
        Free-form sensor dataset covering all users.
    config:
        The configuration under test.
    users:
        Target users to evaluate (default: every user in the dataset).
    seed:
        Seed for subsampling and fold shuffling.
    """
    matrix = dataset.authentication_matrix(config.window_seconds, spec=config.feature_spec)
    user_ids = list(users) if users is not None else dataset.user_ids()
    user_array = np.asarray(matrix.user_ids, dtype=object)
    context_array = np.asarray(matrix.contexts, dtype=object)
    contexts: tuple[CoarseContext, ...] = (
        tuple(CoarseContext) if config.use_context else (None,)  # type: ignore[assignment]
    )
    per_user: list[UserEvaluation] = []
    for user_id in user_ids:
        rng = derive_rng(seed, "evaluate", user_id)
        per_context: dict[CoarseContext, AuthenticationMetrics] = {}
        for context in contexts:
            if context is None:
                context_mask = np.ones(len(matrix), dtype=bool)
            else:
                context_mask = context_array == context.value
            positives = matrix.values[(user_array == user_id) & context_mask]
            negatives = matrix.values[(user_array != user_id) & context_mask]
            positives = _subsample(positives, config.max_windows_per_user, rng)
            negatives = _subsample(
                negatives,
                None if config.max_windows_per_user is None
                else config.max_windows_per_user * max(len(user_ids) - 1, 1),
                rng,
            )
            metrics = _cross_validated_metrics(positives, negatives, config, seed=rng)
            if metrics is None:
                continue
            per_context[context or CoarseContext.STATIONARY] = metrics
        if not per_context:
            continue
        overall = _combine_contexts(per_context)
        per_user.append(
            UserEvaluation(
                user_id=user_id,
                overall=overall,
                per_context=per_context if config.use_context else {},
            )
        )
    if not per_user:
        raise ValueError("no user produced enough windows to evaluate this configuration")
    return EvaluationResult(config=config, per_user=per_user)
