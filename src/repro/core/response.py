"""Response module: what happens after each authentication decision.

Section IV-A2: on a rejected window the system can lock the smartphone,
refuse access to security-critical data, or demand explicit (multi-factor)
re-authentication; a legitimate user who is misclassified can re-instate
herself through explicit authentication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.authenticator import AuthenticationDecision
from repro.utils.validation import check_positive


class DeviceState(str, Enum):
    """Access state of the smartphone as managed by the response module."""

    UNLOCKED = "unlocked"
    RESTRICTED = "restricted"   # sensitive data blocked, normal apps allowed
    LOCKED = "locked"           # explicit re-authentication required


class ResponseAction(str, Enum):
    """Action the response module takes after a decision."""

    ALLOW = "allow"
    RESTRICT_SENSITIVE = "restrict_sensitive"
    LOCK_DEVICE = "lock_device"
    REQUIRE_EXPLICIT_AUTH = "require_explicit_auth"


@dataclass
class ResponseEvent:
    """One entry of the response module's audit log."""

    window_index: int
    accepted: bool
    confidence_score: float
    action: ResponseAction
    state: DeviceState


@dataclass
class ResponseModule:
    """Tracks consecutive rejections and locks the device when they persist.

    Parameters
    ----------
    lockout_consecutive_rejections:
        Rejected windows in a row before the device locks (the first
        rejection already restricts access to sensitive data).
    """

    lockout_consecutive_rejections: int = 2
    state: DeviceState = DeviceState.UNLOCKED
    consecutive_rejections: int = 0
    events: list[ResponseEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive(self.lockout_consecutive_rejections, "lockout_consecutive_rejections")

    def handle(self, decision: AuthenticationDecision) -> ResponseAction:
        """Apply the response policy to one authentication decision."""
        if self.state is DeviceState.LOCKED:
            action = ResponseAction.REQUIRE_EXPLICIT_AUTH
        elif decision.accepted:
            self.consecutive_rejections = 0
            self.state = DeviceState.UNLOCKED
            action = ResponseAction.ALLOW
        else:
            self.consecutive_rejections += 1
            if self.consecutive_rejections >= self.lockout_consecutive_rejections:
                self.state = DeviceState.LOCKED
                action = ResponseAction.LOCK_DEVICE
            else:
                self.state = DeviceState.RESTRICTED
                action = ResponseAction.RESTRICT_SENSITIVE
        self.events.append(
            ResponseEvent(
                window_index=len(self.events),
                accepted=decision.accepted,
                confidence_score=decision.confidence_score,
                action=action,
                state=self.state,
            )
        )
        return action

    def explicit_reauthentication(self, success: bool) -> DeviceState:
        """Process an explicit login attempt (password / biometric).

        A successful explicit authentication unlocks the device and resets the
        rejection counter; a failed one keeps it locked.
        """
        if success:
            self.state = DeviceState.UNLOCKED
            self.consecutive_rejections = 0
        else:
            self.state = DeviceState.LOCKED
        return self.state

    @property
    def sensitive_data_accessible(self) -> bool:
        """Whether security-critical data / cloud services may be accessed."""
        return self.state is DeviceState.UNLOCKED

    def reset(self) -> None:
        """Clear all state and history (used between experiments)."""
        self.state = DeviceState.UNLOCKED
        self.consecutive_rejections = 0
        self.events.clear()
