"""Configuration for the SmarterYou system and its design parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.features.vector import FeatureVectorSpec
from repro.sensors.types import DeviceType, SELECTED_SENSORS, SensorType
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class SmarterYouConfig:
    """All tunable design parameters of the system, with the paper's defaults.

    Attributes
    ----------
    window_seconds:
        Authentication window length; the paper settles on 6 s (Figure 4).
    target_enrollment_windows:
        Number of windows collected before the enrolment phase trains the
        first models; the paper finds ~800 measurements optimal (Figure 5).
    ridge:
        KRR regularisation strength :math:`\\rho`.
    sensors:
        Sensors used for authentication (accelerometer + gyroscope after the
        Fisher-score selection of Table II).
    devices:
        Device set: phone only, or phone + watch (the paper's best setting).
    use_context:
        Whether per-context models are used (Table VII's "w/ context" rows).
    confidence_threshold:
        Retraining threshold :math:`\\epsilon_{CS}` on the confidence score
        (the paper uses 0.2).
    confidence_window_days:
        How long the confidence score must stay below the threshold before
        retraining is triggered.
    lockout_consecutive_rejections:
        Number of consecutive rejected windows after which the response
        module locks the device and demands explicit re-authentication.
    sampling_rate_hz:
        Sensor sampling rate.
    """

    window_seconds: float = 6.0
    target_enrollment_windows: int = 800
    ridge: float = 1.0
    sensors: tuple[SensorType, ...] = SELECTED_SENSORS
    devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH)
    use_context: bool = True
    confidence_threshold: float = 0.2
    confidence_window_days: float = 1.0
    lockout_consecutive_rejections: int = 2
    sampling_rate_hz: float = 50.0

    def __post_init__(self) -> None:
        check_positive(self.window_seconds, "window_seconds")
        check_positive(self.ridge, "ridge")
        check_positive(self.sampling_rate_hz, "sampling_rate_hz")
        check_positive(self.confidence_window_days, "confidence_window_days")
        check_in_range(self.confidence_threshold, "confidence_threshold", -10.0, 10.0)
        if self.target_enrollment_windows < 10:
            raise ValueError("target_enrollment_windows must be >= 10")
        if self.lockout_consecutive_rejections < 1:
            raise ValueError("lockout_consecutive_rejections must be >= 1")
        if not self.devices:
            raise ValueError("at least one device must be configured")
        if not self.sensors:
            raise ValueError("at least one sensor must be configured")

    @property
    def feature_spec(self) -> FeatureVectorSpec:
        """Feature-vector layout implied by the configured sensors/devices."""
        return FeatureVectorSpec(sensors=self.sensors, devices=self.devices)

    @property
    def phone_feature_spec(self) -> FeatureVectorSpec:
        """Phone-only layout used by the user-agnostic context detector."""
        return FeatureVectorSpec(sensors=self.sensors, devices=(DeviceType.SMARTPHONE,))

    def with_devices(self, devices: tuple[DeviceType, ...]) -> "SmarterYouConfig":
        """A copy of the config using a different device set."""
        return SmarterYouConfig(
            window_seconds=self.window_seconds,
            target_enrollment_windows=self.target_enrollment_windows,
            ridge=self.ridge,
            sensors=self.sensors,
            devices=devices,
            use_context=self.use_context,
            confidence_threshold=self.confidence_threshold,
            confidence_window_days=self.confidence_window_days,
            lockout_consecutive_rejections=self.lockout_consecutive_rejections,
            sampling_rate_hz=self.sampling_rate_hz,
        )

    def without_context(self) -> "SmarterYouConfig":
        """A copy of the config that uses a single unified model (no contexts)."""
        return SmarterYouConfig(
            window_seconds=self.window_seconds,
            target_enrollment_windows=self.target_enrollment_windows,
            ridge=self.ridge,
            sensors=self.sensors,
            devices=self.devices,
            use_context=False,
            confidence_threshold=self.confidence_threshold,
            confidence_window_days=self.confidence_window_days,
            lockout_consecutive_rejections=self.lockout_consecutive_rejections,
            sampling_rate_hz=self.sampling_rate_hz,
        )
