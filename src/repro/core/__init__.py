"""Core SmarterYou system: context-aware implicit continuous authentication.

This package is the paper's primary contribution.  It wires the substrates
together into the architecture of Figure 1:

* :class:`~repro.core.context.ContextDetector` — user-agnostic stationary /
  moving detection from smartphone features (Section V-E);
* :class:`~repro.core.authenticator.ContextualAuthenticator` — per-context
  kernel-ridge-regression models scoring each window (Section V-F);
* :class:`~repro.core.response.ResponseModule` — de-authentication policy
  (Section IV-A2);
* :class:`~repro.core.retraining.ConfidenceScoreMonitor` — behavioural-drift
  detection and automatic retraining (Section V-I);
* :class:`~repro.core.enrollment.EnrollmentPhase` and
  :class:`~repro.core.system.SmarterYou` — the end-to-end enrolment and
  continuous-authentication loops (Section IV-B).
"""

from repro.core.config import SmarterYouConfig
from repro.core.context import ContextDetector, ContextDetectionReport
from repro.core.authenticator import AuthenticationDecision, ContextualAuthenticator
from repro.core.response import ResponseAction, ResponseModule, DeviceState
from repro.core.retraining import ConfidenceScoreMonitor, RetrainingDecision
from repro.core.enrollment import EnrollmentPhase, EnrollmentResult
from repro.core.system import SmarterYou
from repro.core.evaluation import (
    EvaluationConfig,
    EvaluationResult,
    evaluate_configuration,
    default_authentication_classifier,
)

__all__ = [
    "EvaluationConfig",
    "EvaluationResult",
    "evaluate_configuration",
    "default_authentication_classifier",
    "SmarterYouConfig",
    "ContextDetector",
    "ContextDetectionReport",
    "AuthenticationDecision",
    "ContextualAuthenticator",
    "ResponseAction",
    "ResponseModule",
    "DeviceState",
    "ConfidenceScoreMonitor",
    "RetrainingDecision",
    "EnrollmentPhase",
    "EnrollmentResult",
    "SmarterYou",
]
