"""Per-context authentication component (Figure 1's testing module classifier).

The authenticator holds one trained model per coarse context (or a single
unified model when context use is disabled) and scores each incoming
authentication feature vector.  The decision value of the underlying
kernel-ridge classifier is exposed as the confidence score used by the
retraining monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.cloud import LEGITIMATE_LABEL, ContextModel, TrainedModelBundle
from repro.sensors.types import CoarseContext


@dataclass(frozen=True)
class AuthenticationDecision:
    """Outcome of authenticating one window.

    Attributes
    ----------
    accepted:
        Whether the window was attributed to the legitimate user.
    confidence_score:
        The classifier's decision value :math:`CS(k) = x_k^T w^*`.
    context:
        The context whose model produced the decision.
    """

    accepted: bool
    confidence_score: float
    context: CoarseContext


class ContextualAuthenticator:
    """Scores authentication feature vectors with per-context models.

    Parameters
    ----------
    bundle:
        The trained models downloaded from the cloud server.
    use_context:
        When false, the stationary-context model is used for every window
        (the "w/o context" rows of Table VII are produced by training that
        single model on all contexts instead).
    """

    def __init__(self, bundle: TrainedModelBundle, use_context: bool = True) -> None:
        if not bundle.models:
            raise ValueError("the model bundle contains no trained models")
        self.bundle = bundle
        self.use_context = use_context

    @property
    def user_id(self) -> str:
        """The legitimate user this authenticator protects."""
        return self.bundle.user_id

    @property
    def version(self) -> int:
        """Training-round version of the underlying models."""
        return self.bundle.version

    def _select_model(self, context: CoarseContext) -> ContextModel:
        if not self.use_context:
            # A single unified model is stored under the stationary key when
            # contexts are disabled; fall back to any available model.
            if CoarseContext.STATIONARY in self.bundle.models:
                return self.bundle.models[CoarseContext.STATIONARY]
            return next(iter(self.bundle.models.values()))
        if context in self.bundle.models:
            return self.bundle.models[context]
        # Degrade gracefully if a context was never enrolled: use any model
        # rather than refusing service.
        return next(iter(self.bundle.models.values()))

    def authenticate(
        self, features: np.ndarray, context: CoarseContext
    ) -> AuthenticationDecision:
        """Authenticate a single window's feature vector under *context*."""
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if features.shape[0] != 1:
            raise ValueError("authenticate() scores exactly one window; use authenticate_many()")
        model = self._select_model(context)
        score = float(model.decision_scores(features)[0])
        accepted = bool(model.predict_legitimate(features)[0])
        return AuthenticationDecision(
            accepted=accepted, confidence_score=score, context=model.context
        )

    def authenticate_many(
        self, features: np.ndarray, contexts: list[CoarseContext]
    ) -> list[AuthenticationDecision]:
        """Authenticate a batch of windows, each with its detected context."""
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if len(contexts) != len(features):
            raise ValueError(
                f"got {len(features)} feature rows but {len(contexts)} context labels"
            )
        return [
            self.authenticate(features[index], contexts[index])
            for index in range(len(features))
        ]

    def confidence_scores(
        self, features: np.ndarray, contexts: list[CoarseContext]
    ) -> np.ndarray:
        """Confidence score of every window (used by the retraining monitor)."""
        decisions = self.authenticate_many(features, contexts)
        return np.array([decision.confidence_score for decision in decisions])

    @staticmethod
    def legitimate_label() -> str:
        """The label string used for the legitimate class inside the models."""
        return LEGITIMATE_LABEL
