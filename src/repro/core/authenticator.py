"""Per-context authentication component (Figure 1's testing module classifier).

The authenticator holds one trained model per coarse context (or a single
unified model when context use is disabled) and scores each incoming
authentication feature vector.  The decision value of the underlying
kernel-ridge classifier is exposed as the confidence score used by the
retraining monitor.

Scoring is delegated to the vectorized
:class:`~repro.core.scoring.BatchScorer`, so the single-user experiment
path and the fleet-scale serving path share one code path (and the batch
entry points score a whole session in a handful of matrix operations rather
than one window at a time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import BatchScorer
from repro.devices.cloud import LEGITIMATE_LABEL, ContextModel, TrainedModelBundle
from repro.sensors.types import CoarseContext


@dataclass(frozen=True)
class AuthenticationDecision:
    """Outcome of authenticating one window.

    Attributes
    ----------
    accepted:
        Whether the window was attributed to the legitimate user.
    confidence_score:
        The classifier's decision value :math:`CS(k) = x_k^T w^*`.
    context:
        The context whose model produced the decision.
    """

    accepted: bool
    confidence_score: float
    context: CoarseContext


class ContextualAuthenticator:
    """Scores authentication feature vectors with per-context models.

    Parameters
    ----------
    bundle:
        The trained models downloaded from the cloud server.
    use_context:
        When false, the stationary-context model is used for every window
        (the "w/o context" rows of Table VII are produced by training that
        single model on all contexts instead).
    """

    def __init__(self, bundle: TrainedModelBundle, use_context: bool = True) -> None:
        # BatchScorer validates the bundle (raises on an empty one).
        self._scorer = BatchScorer(bundle, use_context=use_context)

    @property
    def bundle(self) -> TrainedModelBundle:
        """The trained models scoring every decision (scorer-backed)."""
        return self._scorer.bundle

    @bundle.setter
    def bundle(self, bundle: TrainedModelBundle) -> None:
        # Hot-swapping models (e.g. after retraining) must also rebuild the
        # batch scorer, or decisions would keep coming from the old bundle.
        self._scorer = BatchScorer(bundle, use_context=self._scorer.use_context)

    @property
    def use_context(self) -> bool:
        """Whether scoring selects per-context models (scorer-backed)."""
        return self._scorer.use_context

    @use_context.setter
    def use_context(self, use_context: bool) -> None:
        self._scorer = BatchScorer(self._scorer.bundle, use_context=use_context)

    @property
    def user_id(self) -> str:
        """The legitimate user this authenticator protects."""
        return self.bundle.user_id

    @property
    def version(self) -> int:
        """Training-round version of the underlying models."""
        return self.bundle.version

    def _select_model(self, context: CoarseContext) -> ContextModel:
        return self._scorer.select_model(context)

    def authenticate(
        self, features: np.ndarray, context: CoarseContext
    ) -> AuthenticationDecision:
        """Authenticate a single window's feature vector under *context*."""
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features[np.newaxis, :]
        if features.shape[0] != 1:
            raise ValueError("authenticate() scores exactly one window; use authenticate_many()")
        return self.authenticate_many(features, [context])[0]

    def authenticate_many(
        self, features: np.ndarray, contexts: list[CoarseContext]
    ) -> list[AuthenticationDecision]:
        """Authenticate a batch of windows, each with its detected context.

        The whole batch is scored through the vectorized
        :class:`~repro.core.scoring.BatchScorer` in one pass per selected
        model.
        """
        result = self._scorer.score(features, contexts)
        return [
            AuthenticationDecision(
                accepted=bool(result.accepted[index]),
                confidence_score=float(result.scores[index]),
                context=result.model_contexts[index],
            )
            for index in range(len(result))
        ]

    def confidence_scores(
        self, features: np.ndarray, contexts: list[CoarseContext]
    ) -> np.ndarray:
        """Confidence score of every window (used by the retraining monitor)."""
        return self._scorer.confidence_scores(
            np.asarray(features, dtype=float), list(contexts)
        )

    @staticmethod
    def legitimate_label() -> str:
        """The label string used for the legitimate class inside the models."""
        return LEGITIMATE_LABEL
