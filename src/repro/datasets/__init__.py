"""Dataset substrate: the synthetic study population and data collections.

Replaces the paper's 35-participant, two-week field study with a synthetic
population (demographics included, Figure 2) and collection routines for the
three experiment types of Section V-A: free-form usage, controlled lab
sessions for context detection, and attacker-usage sessions.
"""

from repro.datasets.population import (
    AgeBand,
    Gender,
    Participant,
    StudyPopulation,
    build_study_population,
    PAPER_AGE_DISTRIBUTION,
    PAPER_GENDER_DISTRIBUTION,
)
from repro.datasets.collection import (
    SessionData,
    SensorDataset,
    collect_session,
    collect_free_form_dataset,
    collect_lab_context_dataset,
)

__all__ = [
    "AgeBand",
    "Gender",
    "Participant",
    "StudyPopulation",
    "build_study_population",
    "PAPER_AGE_DISTRIBUTION",
    "PAPER_GENDER_DISTRIBUTION",
    "SessionData",
    "SensorDataset",
    "collect_session",
    "collect_free_form_dataset",
    "collect_lab_context_dataset",
]
