"""The synthetic study population and its demographics (Figure 2).

The paper recruits 35 participants: 16 female / 19 male, with ages spread
over five bands (20-25: 12, 25-30: 9, 30-35: 5, 35-40: 5, 40+: 4).  The
population builder reproduces exactly those marginals by default and attaches
an independently sampled behavioural profile to every participant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.sensors.behavior import BehaviorProfile, sample_profile
from repro.utils.rng import RandomState, derive_rng


class Gender(str, Enum):
    """Participant gender as recorded in the paper's demographics."""

    FEMALE = "female"
    MALE = "male"


class AgeBand(str, Enum):
    """Age bands used by Figure 2."""

    A20_25 = "20-25"
    A25_30 = "25-30"
    A30_35 = "30-35"
    A35_40 = "35-40"
    A40_PLUS = "40+"


#: Gender counts from Figure 2 (16 female, 19 male).
PAPER_GENDER_DISTRIBUTION: dict[Gender, int] = {Gender.FEMALE: 16, Gender.MALE: 19}

#: Age-band counts from Figure 2 (12, 9, 5, 5, 4).
PAPER_AGE_DISTRIBUTION: dict[AgeBand, int] = {
    AgeBand.A20_25: 12,
    AgeBand.A25_30: 9,
    AgeBand.A30_35: 5,
    AgeBand.A35_40: 5,
    AgeBand.A40_PLUS: 4,
}


@dataclass(frozen=True)
class Participant:
    """One study participant: identity, demographics and behavioural profile."""

    user_id: str
    gender: Gender
    age_band: AgeBand
    profile: BehaviorProfile


@dataclass
class StudyPopulation:
    """The full participant roster with demographic summaries.

    Attributes
    ----------
    participants:
        All enrolled participants in a stable order.
    """

    participants: list[Participant] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.participants)

    def __iter__(self):
        return iter(self.participants)

    def __getitem__(self, index: int) -> Participant:
        return self.participants[index]

    def user_ids(self) -> list[str]:
        """All participant identifiers, in enrolment order."""
        return [participant.user_id for participant in self.participants]

    def by_id(self, user_id: str) -> Participant:
        """Look up a participant by identifier."""
        for participant in self.participants:
            if participant.user_id == user_id:
                return participant
        raise KeyError(f"unknown participant {user_id!r}")

    def profiles(self) -> dict[str, BehaviorProfile]:
        """Mapping from user id to behavioural profile."""
        return {p.user_id: p.profile for p in self.participants}

    def gender_histogram(self) -> dict[Gender, int]:
        """Participant counts per gender (left pie of Figure 2)."""
        histogram = {gender: 0 for gender in Gender}
        for participant in self.participants:
            histogram[participant.gender] += 1
        return histogram

    def age_histogram(self) -> dict[AgeBand, int]:
        """Participant counts per age band (right pie of Figure 2)."""
        histogram = {band: 0 for band in AgeBand}
        for participant in self.participants:
            histogram[participant.age_band] += 1
        return histogram

    def subset(self, n_users: int) -> "StudyPopulation":
        """The first *n_users* participants (deterministic down-scaling)."""
        if not 1 <= n_users <= len(self.participants):
            raise ValueError(
                f"n_users must be in [1, {len(self.participants)}], got {n_users}"
            )
        return StudyPopulation(participants=self.participants[:n_users])


def build_study_population(
    n_users: int = 35,
    gender_distribution: dict[Gender, int] | None = None,
    age_distribution: dict[AgeBand, int] | None = None,
    seed: RandomState = None,
) -> StudyPopulation:
    """Build a synthetic population matching the paper's demographics.

    Parameters
    ----------
    n_users:
        Number of participants.  With the default 35 the paper's exact
        demographic counts are used; other sizes draw demographics
        proportionally to the paper's distribution.
    gender_distribution / age_distribution:
        Optional overrides of the demographic counts (need not sum to
        *n_users*; they are treated as weights).
    seed:
        Seed controlling demographic assignment and every profile draw.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    gender_distribution = gender_distribution or PAPER_GENDER_DISTRIBUTION
    age_distribution = age_distribution or PAPER_AGE_DISTRIBUTION
    rng = derive_rng(seed, "population")

    def expand(distribution: dict, count: int) -> list:
        keys = list(distribution.keys())
        weights = np.array([distribution[key] for key in keys], dtype=float)
        weights = weights / weights.sum()
        # Deterministic proportional allocation followed by random top-up.
        allocation = np.floor(weights * count).astype(int)
        while allocation.sum() < count:
            allocation[rng.choice(len(keys), p=weights)] += 1
        assigned: list = []
        for key, quota in zip(keys, allocation):
            assigned.extend([key] * int(quota))
        rng.shuffle(assigned)
        return assigned[:count]

    genders = expand(gender_distribution, n_users)
    age_bands = expand(age_distribution, n_users)
    participants = []
    for index in range(n_users):
        user_id = f"user{index + 1:02d}"
        participants.append(
            Participant(
                user_id=user_id,
                gender=genders[index],
                age_band=age_bands[index],
                profile=sample_profile(user_id, seed=seed),
            )
        )
    return StudyPopulation(participants=participants)
