"""Data-collection routines for the three experiment types of Section V-A.

* **Free-form usage** — participants use phone and watch without constraints
  for one to two weeks; used for all authentication experiments.
* **Lab sessions** — participants use the devices for a fixed period under
  each prescribed context; used only to train/evaluate the user-agnostic
  context detector (Table V).
* **Attacker usage** — handled by :mod:`repro.attacks`, which reuses
  :func:`collect_session` with a blended (mimicry) profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.datasets.population import StudyPopulation
from repro.features.vector import (
    FeatureMatrix,
    FeatureVectorSpec,
    extract_authentication_matrix,
    extract_device_vector,
    stack_matrices,
)
from repro.sensors.behavior import BehaviorProfile
from repro.sensors.generators import SensorStreamGenerator
from repro.sensors.types import (
    Context,
    CoarseContext,
    DeviceType,
    MultiSensorRecording,
    SensorType,
)
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_positive

#: Fine contexts sampled during free-form usage and their relative frequency.
FREE_FORM_CONTEXT_WEIGHTS: dict[Context, float] = {
    Context.HANDHELD_STATIC: 0.45,
    Context.MOVING: 0.35,
    Context.ON_TABLE: 0.12,
    Context.VEHICLE: 0.08,
}


@dataclass
class SessionData:
    """One simultaneous phone + watch recording session of one user."""

    user_id: str
    context: Context
    recordings: dict[DeviceType, MultiSensorRecording]

    @property
    def coarse_context(self) -> CoarseContext:
        """Coarse context of the session."""
        return self.context.coarse

    def authentication_features(
        self, window_seconds: float, spec: FeatureVectorSpec | None = None
    ) -> FeatureMatrix:
        """Per-window authentication vectors for the requested device set."""
        spec = spec or FeatureVectorSpec()
        return extract_authentication_matrix(
            self.recordings, window_seconds, spec=spec
        )

    def device_features(
        self, device: DeviceType, window_seconds: float, spec: FeatureVectorSpec | None = None
    ) -> FeatureMatrix:
        """Per-window single-device vectors (``SP(k)`` or ``SW(k)``)."""
        if device not in self.recordings:
            raise KeyError(f"session has no recording for {device.value}")
        return extract_device_vector(self.recordings[device], window_seconds, spec=spec)


@dataclass
class SensorDataset:
    """A collection of sessions over a population, ready for featurisation."""

    sessions: list[SessionData] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self):
        return iter(self.sessions)

    def user_ids(self) -> list[str]:
        """Distinct user ids present in the dataset, sorted."""
        return sorted({session.user_id for session in self.sessions})

    def sessions_for(self, user_id: str, context: CoarseContext | None = None) -> list[SessionData]:
        """Sessions of one user, optionally filtered by coarse context."""
        selected = [s for s in self.sessions if s.user_id == user_id]
        if context is not None:
            selected = [s for s in selected if s.coarse_context is context]
        return selected

    def authentication_matrix(
        self,
        window_seconds: float,
        spec: FeatureVectorSpec | None = None,
        users: Iterable[str] | None = None,
    ) -> FeatureMatrix:
        """Stacked, labelled authentication matrix over the whole dataset."""
        spec = spec or FeatureVectorSpec()
        selected_users = set(users) if users is not None else None
        matrices = []
        for session in self.sessions:
            if selected_users is not None and session.user_id not in selected_users:
                continue
            matrix = session.authentication_features(window_seconds, spec=spec)
            if len(matrix):
                matrices.append(matrix)
        if not matrices:
            raise ValueError("no feature windows produced; are the sessions long enough?")
        return stack_matrices(matrices)

    def device_matrix(
        self,
        device: DeviceType,
        window_seconds: float,
        spec: FeatureVectorSpec | None = None,
    ) -> FeatureMatrix:
        """Stacked single-device matrix over the whole dataset."""
        matrices = []
        for session in self.sessions:
            if device not in session.recordings:
                continue
            matrix = session.device_features(device, window_seconds, spec=spec)
            if len(matrix):
                matrices.append(matrix)
        if not matrices:
            raise ValueError(f"no feature windows produced for {device.value}")
        return stack_matrices(matrices)

    def recordings(self, device: DeviceType) -> list[MultiSensorRecording]:
        """All raw recordings of one device across the dataset."""
        return [s.recordings[device] for s in self.sessions if device in s.recordings]


def collect_session(
    profile: BehaviorProfile,
    context: Context,
    duration: float,
    devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
    sensors: tuple[SensorType, ...] = tuple(SensorType),
    sampling_rate: float = 50.0,
    seed: RandomState = None,
) -> SessionData:
    """Record one session of *duration* seconds on every requested device."""
    check_positive(duration, "duration")
    generator = SensorStreamGenerator(profile, sampling_rate=sampling_rate, seed=seed)
    recordings = {
        device: generator.generate(device, context, duration, sensors=sensors)
        for device in devices
    }
    return SessionData(user_id=profile.user_id, context=context, recordings=recordings)


def collect_free_form_dataset(
    population: StudyPopulation,
    session_duration: float = 120.0,
    sessions_per_context: int = 2,
    contexts: tuple[Context, ...] = (Context.HANDHELD_STATIC, Context.MOVING),
    sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
    seed: RandomState = None,
) -> SensorDataset:
    """Simulate the two-week free-form usage study.

    Every participant contributes *sessions_per_context* sessions of
    *session_duration* seconds under each requested fine context, recorded on
    both devices.  Durations are deliberately configurable so experiments can
    trade fidelity for runtime; the paper's full-scale study corresponds to
    much longer sessions with identical code paths.
    """
    check_positive(session_duration, "session_duration")
    if sessions_per_context < 1:
        raise ValueError("sessions_per_context must be >= 1")
    sessions: list[SessionData] = []
    for participant in population:
        for context in contexts:
            for repeat in range(sessions_per_context):
                session_seed = derive_rng(
                    seed, "freeform", participant.user_id, context.value, repeat
                )
                sessions.append(
                    collect_session(
                        participant.profile,
                        context,
                        session_duration,
                        sensors=sensors,
                        seed=session_seed,
                    )
                )
    return SensorDataset(sessions=sessions)


def collect_lab_context_dataset(
    population: StudyPopulation,
    session_duration: float = 120.0,
    contexts: tuple[Context, ...] = tuple(Context),
    sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
    seed: RandomState = None,
) -> SensorDataset:
    """Simulate the controlled lab sessions used for context-detection training.

    The paper has each user spend 20 minutes per prescribed context; here the
    duration is configurable.  Only smartphone recordings are needed because
    the deployed context detector uses phone features only (Section V-E).
    """
    check_positive(session_duration, "session_duration")
    sessions: list[SessionData] = []
    for participant in population:
        for context in contexts:
            session_seed = derive_rng(seed, "lab", participant.user_id, context.value)
            sessions.append(
                collect_session(
                    participant.profile,
                    context,
                    session_duration,
                    devices=(DeviceType.SMARTPHONE,),
                    sensors=sensors,
                    seed=session_seed,
                )
            )
    return SensorDataset(sessions=sessions)


def free_form_context_mixture(
    profile: BehaviorProfile,
    total_duration: float,
    segment_duration: float = 60.0,
    sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
    seed: RandomState = None,
) -> list[SessionData]:
    """Simulate unconstrained usage as a random mixture of fine contexts.

    Useful for end-to-end demos where the context is not fixed per session:
    the user alternates between contexts with the paper-motivated frequencies
    of ``FREE_FORM_CONTEXT_WEIGHTS``.
    """
    check_positive(total_duration, "total_duration")
    check_positive(segment_duration, "segment_duration")
    rng = derive_rng(seed, "mixture", profile.user_id)
    contexts = list(FREE_FORM_CONTEXT_WEIGHTS.keys())
    weights = np.array(list(FREE_FORM_CONTEXT_WEIGHTS.values()))
    weights = weights / weights.sum()
    sessions = []
    elapsed = 0.0
    segment_index = 0
    while elapsed < total_duration:
        context = contexts[int(rng.choice(len(contexts), p=weights))]
        duration = min(segment_duration, total_duration - elapsed)
        sessions.append(
            collect_session(
                profile,
                context,
                duration,
                sensors=sensors,
                seed=derive_rng(seed, "mixture-segment", profile.user_id, segment_index),
            )
        )
        elapsed += duration
        segment_index += 1
    return sessions
