"""Attacker models: zero-effort use and deliberate mimicry (Section V-G)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.collection import SessionData, collect_session
from repro.sensors.behavior import BehaviorProfile, ProfileBlend, blend_profiles
from repro.sensors.types import Context, DeviceType, SensorType
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass
class AttackSession:
    """One attack attempt: who attacked whom, and the recorded sensor data."""

    attacker_id: str
    victim_id: str
    fidelity: float
    session: SessionData


class ZeroEffortAttacker:
    """An adversary who simply uses the stolen phone with his own behaviour.

    This is the attacker implicitly evaluated by the FAR of every
    cross-validated experiment: the negative-class windows come from other
    users behaving naturally.
    """

    def __init__(self, profile: BehaviorProfile, seed: RandomState = None) -> None:
        self.profile = profile
        self._seed = seed
        self._attempts = 0

    def attack(
        self,
        victim_id: str,
        context: Context,
        duration: float,
        devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
        sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
    ) -> AttackSession:
        """Use the victim's phone naturally for *duration* seconds."""
        check_positive(duration, "duration")
        self._attempts += 1
        session = collect_session(
            self.profile,
            context,
            duration,
            devices=devices,
            sensors=sensors,
            seed=derive_rng(self._seed, "zero-effort", victim_id, self._attempts),
        )
        return AttackSession(
            attacker_id=self.profile.user_id,
            victim_id=victim_id,
            fidelity=0.0,
            session=session,
        )


class MimicryAttacker:
    """An adversary who watched the victim and imitates the victim's behaviour.

    Parameters
    ----------
    profile:
        The attacker's own behavioural profile.
    fidelity:
        Fraction of the victim's *observable* behaviour the attacker manages
        to copy (stride frequency, gross amplitudes, hold angle).  The paper's
        VCR-observation protocol corresponds to moderately high fidelity, but
        fine-grained dynamics (phases, tremor spectrum) remain the attacker's
        own — which is why the system still detects the attack quickly.
    seed:
        Seed for the attack-session sensor streams.
    """

    def __init__(
        self, profile: BehaviorProfile, fidelity: float = 0.6, seed: RandomState = None
    ) -> None:
        check_in_range(fidelity, "fidelity", 0.0, 1.0)
        self.profile = profile
        self.fidelity = fidelity
        self._seed = seed
        self._attempts = 0

    def effective_profile(self, victim: BehaviorProfile) -> BehaviorProfile:
        """The behaviour the attacker actually exhibits while imitating *victim*."""
        return blend_profiles(
            ProfileBlend(attacker=self.profile, victim=victim, fidelity=self.fidelity)
        )

    def attack(
        self,
        victim: BehaviorProfile,
        context: Context,
        duration: float,
        devices: tuple[DeviceType, ...] = (DeviceType.SMARTPHONE, DeviceType.SMARTWATCH),
        sensors: tuple[SensorType, ...] = (SensorType.ACCELEROMETER, SensorType.GYROSCOPE),
    ) -> AttackSession:
        """Imitate *victim* on the victim's devices for *duration* seconds."""
        check_positive(duration, "duration")
        self._attempts += 1
        imitated = self.effective_profile(victim)
        session = collect_session(
            imitated,
            context,
            duration,
            devices=devices,
            sensors=sensors,
            seed=derive_rng(self._seed, "mimicry", victim.user_id, self._attempts),
        )
        # The session carries the attacker's identity so evaluation code can
        # never confuse attack windows with genuine ones.
        session.user_id = self.profile.user_id
        return AttackSession(
            attacker_id=self.profile.user_id,
            victim_id=victim.user_id,
            fidelity=self.fidelity,
            session=session,
        )
