"""Detection-time evaluation of masquerading attacks (Figure 6, Section V-G).

Given a deployed authenticator and a set of attack sessions, the evaluation
replays each attack window by window and records when each attacker is first
rejected (de-authenticated).  The headline artefact is the survival curve of
Figure 6 — the fraction of adversaries still holding access at time *t* —
plus the theoretical escape probability ``p^n`` from the paper's analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.attacks.attackers import AttackSession
from repro.utils.validation import check_in_range, check_positive


class WindowAuthenticator(Protocol):
    """Anything that can authenticate the windows of a recorded session."""

    def authenticate_session(self, session, window_seconds: float | None = None) -> Sequence[bool]:
        """Return one accept/reject decision per analysis window."""
        ...


@dataclass
class DetectionTimeline:
    """Result of replaying a set of attacks against the authenticator.

    Attributes
    ----------
    window_seconds:
        Authentication period (one decision every *window_seconds*).
    detection_windows:
        For every attack, the index of the first rejected window, or ``None``
        if the attacker was never rejected within the session.
    n_windows:
        Number of windows each attack session contained.
    """

    window_seconds: float
    detection_windows: list[int | None]
    n_windows: list[int]

    @property
    def n_attacks(self) -> int:
        return len(self.detection_windows)

    def detection_times_s(self) -> list[float | None]:
        """Seconds until each attacker was locked out (None = never)."""
        times: list[float | None] = []
        for first_reject in self.detection_windows:
            if first_reject is None:
                times.append(None)
            else:
                times.append((first_reject + 1) * self.window_seconds)
        return times

    def survival_curve(self, horizon_s: float | None = None, step_s: float | None = None):
        """Fraction of attackers still authenticated at each time point.

        Returns ``(times, fractions)`` — the two axes of Figure 6.  At t=0 all
        attackers have access; an attacker loses access at the end of the
        first rejected window.
        """
        step = step_s if step_s is not None else self.window_seconds
        check_positive(step, "step_s")
        if horizon_s is None:
            horizon_s = self.window_seconds * (max(self.n_windows) if self.n_windows else 1)
        check_positive(horizon_s, "horizon_s")
        times = np.arange(0.0, horizon_s + step / 2.0, step)
        detection_times = self.detection_times_s()
        fractions = []
        for t in times:
            surviving = sum(
                1
                for detection in detection_times
                if detection is None or detection > t
            )
            fractions.append(surviving / max(self.n_attacks, 1))
        return times, np.asarray(fractions)

    def fraction_detected_within(self, seconds: float) -> float:
        """Fraction of attackers locked out within *seconds*."""
        check_positive(seconds, "seconds")
        detection_times = self.detection_times_s()
        detected = sum(
            1 for detection in detection_times if detection is not None and detection <= seconds
        )
        return detected / max(self.n_attacks, 1)


def evaluate_detection_time(
    authenticator: WindowAuthenticator,
    attacks: Sequence[AttackSession],
    window_seconds: float = 6.0,
) -> DetectionTimeline:
    """Replay every attack session and record the first rejection per attack."""
    check_positive(window_seconds, "window_seconds")
    if not attacks:
        raise ValueError("need at least one attack session to evaluate")
    detection_windows: list[int | None] = []
    n_windows: list[int] = []
    for attack in attacks:
        decisions = list(
            authenticator.authenticate_session(attack.session, window_seconds=window_seconds)
        )
        n_windows.append(len(decisions))
        first_reject = next(
            (index for index, accepted in enumerate(decisions) if not accepted), None
        )
        detection_windows.append(first_reject)
    return DetectionTimeline(
        window_seconds=window_seconds,
        detection_windows=detection_windows,
        n_windows=n_windows,
    )


def escape_probability(far_per_window: float, n_windows: int) -> float:
    """Probability that an attacker survives *n_windows* decisions (``p^n``).

    This is the paper's closed-form argument: with a per-window false-accept
    rate of 2.8 %, surviving three 6-second windows has probability
    ``0.028^3 ≈ 0.002 %``.
    """
    check_in_range(far_per_window, "far_per_window", 0.0, 1.0)
    if n_windows < 0:
        raise ValueError(f"n_windows must be >= 0, got {n_windows}")
    return float(far_per_window**n_windows)


def time_to_detect_all(timeline: DetectionTimeline) -> float | None:
    """Time by which every attacker was locked out, or None if some never were."""
    detection_times = timeline.detection_times_s()
    if any(value is None for value in detection_times):
        return None
    return max(detection_times)  # type: ignore[arg-type]
