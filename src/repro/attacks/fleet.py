"""Fleet-scale adversaries against the *serving path* (not the paper loop).

The sensor-level attackers in :mod:`repro.attacks.attackers` replay the
paper's Section V-G study against the single-user in-process pipeline.
This module attacks the production surface instead: crafted
:class:`~repro.service.protocol.AuthenticateRequest`\\ s submitted through
the v2 envelope API — in process, over JSON HTTP or as binary columnar
frames — with every attacker provisioned as its own
:class:`~repro.service.envelope.CallerRegistry` caller, so per-caller
telemetry attributes the hostile traffic.

Attackers operate in the same feature space the
:class:`~repro.service.fleet.FleetSimulator` synthesises users in (a
Gaussian cluster per context), which keeps a whole campaign against a
500-user fleet fast enough for the test suite:

* **zero-effort** — an outsider (never enrolled) uses the stolen device
  naturally: windows from the thief's own cluster under the victim's id;
* **mimicry** — an enrolled user imitates the victim; the attacker's
  cluster mean is blended toward the victim's with a *strength* in
  ``[0, 1]`` (:func:`mimic_user`), so attack effectiveness is monotone in
  how much of the victim's behaviour the attacker copies;
* **stolen-device** (:class:`StolenDeviceAttacker`) — another *enrolled*
  fleet user's genuine windows scored against the victim's models;
* **replay** (:class:`ReplayAttacker`) — a captured genuine window
  sequence resubmitted verbatim.  The windows are the victim's own, so
  the models accept them — the defence is the envelope layer: a replayed
  idempotency key answers with the recorded response (``replayed=True``)
  and the operation never re-executes.  Raw binary wire frames carry no
  idempotency key (:meth:`ReplayAttacker.wire_frame`); those replays
  re-execute and are caught by per-caller telemetry attribution instead.

:class:`AttackFleet` drives all four campaigns and emits one
:class:`AttackerReport` per attacker — plain deterministic types, so the
report of a campaign run through the in-process envelope channel, the
JSON HTTP door and the binary HTTP door can be compared bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.attacks.evaluation import DetectionTimeline
from repro.sensors.types import CoarseContext
from repro.service.envelope import (
    SCOPE_DATA_WRITE,
    EnvelopeChannel,
    SealedResponse,
)
from repro.service.fleet import FleetSimulator, SimulatedUser
from repro.service.protocol import (
    AuthenticateRequest,
    AuthenticationResponse,
)
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_in_range, check_positive


# --------------------------------------------------------------------- #
# crafted attacks
# --------------------------------------------------------------------- #


@dataclass(frozen=True, eq=False)
class FleetAttack:
    """One crafted fleet-scale attack attempt.

    ``eq=False`` because the request holds a NumPy feature block.

    Attributes
    ----------
    campaign:
        Which attack family crafted it (one of
        :data:`AttackFleet.CAMPAIGNS`).
    attacker_id:
        The behavioural source of the windows (an outsider label, the
        enrolled source user, or the victim itself for a replay).
    victim_id:
        The enrolled user whose models the windows are scored against.
    request:
        The protocol request as it travels on the wire.
    """

    campaign: str
    attacker_id: str
    victim_id: str
    request: AuthenticateRequest


def attack_request(
    source: SimulatedUser,
    victim_id: str,
    n_per_context: int,
    noise: float,
    feature_names: Sequence[str],
    rng: np.random.Generator,
    server_side_contexts: bool = True,
) -> AuthenticateRequest:
    """Windows sampled from *source*'s clusters, submitted as *victim_id*.

    The crafting primitive every campaign shares: the feature windows are
    honest draws from the attacker's behaviour, only the claimed identity
    lies.  With *server_side_contexts* the request omits context labels
    (the service detects them), mirroring the fleet's own traffic.
    """
    check_positive(n_per_context, "n_per_context")
    matrix = source.sample_windows(
        n_per_context, noise, rng, list(feature_names)
    )
    return AuthenticateRequest(
        user_id=victim_id,
        features=matrix.values,
        contexts=(
            None
            if server_side_contexts
            else tuple(CoarseContext(label) for label in matrix.contexts)
        ),
    )


def mimic_user(
    source: SimulatedUser,
    victim: SimulatedUser,
    strength: float,
    mimic_id: str | None = None,
) -> SimulatedUser:
    """The behaviour *source* exhibits while imitating *victim*.

    *strength* is the fleet-scale analogue of the sensor-level mimicry
    *fidelity*: each context cluster mean moves linearly from the
    attacker's own (``0.0``) to the victim's (``1.0``).  Because windows
    are mean + noise, the crafted windows — and hence the score of any
    linear model — are monotone in *strength* for a fixed noise draw.

    Raises
    ------
    ValueError
        If *strength* is outside ``[0, 1]``.
    """
    check_in_range(strength, "strength", 0.0, 1.0)
    means = {
        context: (1.0 - strength) * source.context_means[context]
        + strength * victim.context_means[context]
        for context in victim.context_means
    }
    return SimulatedUser(
        user_id=mimic_id if mimic_id is not None else f"mimic-of-{victim.user_id}",
        context_means=means,
    )


class StolenDeviceAttacker:
    """An enrolled fleet user scoring his own windows as someone else.

    The stolen-device scenario of the threat model: the thief is a
    legitimate member of the same fleet (his behaviour is in the negative
    pool the victim's models trained against), picks up the victim's
    unlocked device and keeps using it naturally.  His windows are honest
    draws from his own clusters — only the claimed identity lies — so the
    victim's models must reject on behaviour alone.
    """

    campaign = "stolen-device"

    def __init__(self, source: SimulatedUser) -> None:
        self.source = source

    def craft(
        self,
        victim_id: str,
        n_per_context: int,
        noise: float,
        feature_names: Sequence[str],
        rng: np.random.Generator,
        server_side_contexts: bool = True,
    ) -> FleetAttack:
        """One attack attempt against *victim_id* (windows are the thief's)."""
        return FleetAttack(
            campaign=self.campaign,
            attacker_id=self.source.user_id,
            victim_id=victim_id,
            request=attack_request(
                self.source,
                victim_id,
                n_per_context,
                noise,
                feature_names,
                rng,
                server_side_contexts,
            ),
        )


class ReplayAttacker:
    """An adversary replaying a captured genuine request verbatim.

    The windows are the victim's own, so every authentication model in
    the fleet accepts them — replay is the attack the *service* layer
    must catch, not the classifier.  Two capture forms:

    * an **enveloped request** (JSON wire or in-process): the capture
      includes the idempotency key, so a verbatim resubmission answers
      with the recorded response (``replayed=True``) and the operation
      never re-executes — that flag is the detection;
    * a **raw binary wire frame** (:meth:`wire_frame`): frames carry no
      idempotency slot, so a replayed frame re-executes.  Detection falls
      to per-caller telemetry attribution — the replayed windows land on
      the capturing credential's counters (see ``docs/attacks.md``).
    """

    campaign = "replay"

    def __init__(self) -> None:
        self.captured: FleetAttack | None = None

    def capture(
        self,
        victim: SimulatedUser,
        n_per_context: int,
        noise: float,
        feature_names: Sequence[str],
        rng: np.random.Generator,
        server_side_contexts: bool = True,
    ) -> FleetAttack:
        """Record one genuine window sequence off the victim's device."""
        attack = FleetAttack(
            campaign=self.campaign,
            attacker_id=victim.user_id,
            victim_id=victim.user_id,
            request=attack_request(
                victim,
                victim.user_id,
                n_per_context,
                noise,
                feature_names,
                rng,
                server_side_contexts,
            ),
        )
        self.captured = attack
        return attack

    def wire_frame(self, api_key: str, frame_id: str | None = None) -> bytes:
        """The captured request as raw binary frame bytes for re-POSTing.

        Raises
        ------
        RuntimeError
            If nothing has been captured yet.
        """
        if self.captured is None:
            raise RuntimeError("capture a request before encoding a wire frame")
        from repro.service import wirebin

        if frame_id is None:
            return wirebin.encode_request_frame(
                [self.captured.request], api_key=api_key
            )
        return wirebin.encode_request_frame(
            [self.captured.request], api_key=api_key, frame_id=frame_id
        )


# --------------------------------------------------------------------- #
# per-attacker detection reports
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AttackerReport:
    """Detection outcome of one attacker's campaign attempt.

    Every field is a plain deterministic type, so two reports produced by
    the same campaign through different transport doors compare equal
    bit-for-bit (``==``).

    Attributes
    ----------
    campaign:
        The attack family.
    caller_id:
        The :class:`~repro.service.envelope.CallerRegistry` caller the
        hostile traffic travelled under (per-caller attribution handle).
    attacker_id, victim_id:
        Behavioural source and claimed identity.
    n_windows, n_accepted, false_accept_rate:
        Per-window acceptance of the attack windows (the FAR the victim's
        models granted this attacker).
    detection_window:
        Index of the first rejected window (``None`` = never rejected —
        the attacker held access for the whole session).
    detection_time_s:
        Seconds until lockout at the configured authentication period.
    replays_sent, replays_flagged:
        Replay campaign only: verbatim resubmissions of the captured
        envelope, and how many the service flagged (``replayed=True``,
        recorded response, no re-execution).
    """

    campaign: str
    caller_id: str
    attacker_id: str
    victim_id: str
    n_windows: int
    n_accepted: int
    false_accept_rate: float
    detection_window: int | None
    detection_time_s: float | None
    replays_sent: int = 0
    replays_flagged: int = 0


@dataclass(frozen=True)
class AttackFleetReport:
    """Every attacker's detection report from one campaign run."""

    window_seconds: float
    attackers: tuple[AttackerReport, ...]

    def for_campaign(self, campaign: str) -> tuple[AttackerReport, ...]:
        """The reports of one campaign, in attacker order."""
        return tuple(
            report for report in self.attackers if report.campaign == campaign
        )

    def campaigns(self) -> tuple[str, ...]:
        """Campaign names present, in first-seen order."""
        seen: list[str] = []
        for report in self.attackers:
            if report.campaign not in seen:
                seen.append(report.campaign)
        return tuple(seen)

    def false_accept_rate(self, campaign: str) -> float:
        """Aggregate window-level FAR of one campaign."""
        reports = self.for_campaign(campaign)
        windows = sum(report.n_windows for report in reports)
        accepted = sum(report.n_accepted for report in reports)
        return accepted / windows if windows else 0.0

    def timeline(self, campaign: str) -> DetectionTimeline:
        """The campaign's detection timeline (survival curve, latency)."""
        reports = self.for_campaign(campaign)
        return DetectionTimeline(
            window_seconds=self.window_seconds,
            detection_windows=[report.detection_window for report in reports],
            n_windows=[report.n_windows for report in reports],
        )

    def to_text(self) -> str:
        """Human-readable per-attacker table."""
        lines = [
            f"{'campaign':<14} {'caller':<26} {'victim':<16} "
            f"{'FAR':>6} {'detect':>8} {'flagged':>8}"
        ]
        for report in self.attackers:
            detect = (
                f"{report.detection_time_s:.0f}s"
                if report.detection_time_s is not None
                else "never"
            )
            flagged = (
                f"{report.replays_flagged}/{report.replays_sent}"
                if report.replays_sent
                else "-"
            )
            lines.append(
                f"{report.campaign:<14} {report.caller_id:<26} "
                f"{report.victim_id:<16} {report.false_accept_rate:>6.1%} "
                f"{detect:>8} {flagged:>8}"
            )
        for campaign in self.campaigns():
            timeline = self.timeline(campaign)
            lines.append(
                f"{campaign}: aggregate FAR "
                f"{self.false_accept_rate(campaign):.1%}, "
                f"{timeline.fraction_detected_within(3 * self.window_seconds):.0%} "
                f"locked out within {3 * self.window_seconds:.0f}s"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# the campaign driver
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class AttackFleetConfig:
    """Scale and behaviour knobs of an adversarial campaign.

    Attributes
    ----------
    n_attackers:
        Attackers per campaign; attacker *i* targets fleet user
        ``i mod n_users``.
    attack_windows_per_context:
        Windows each attacker submits per coarse context.
    mimicry_strength:
        How much of the victim's behaviour the mimicry campaign copies
        (see :func:`mimic_user`).
    n_replays:
        Verbatim resubmissions after the replay campaign's first send.
    window_seconds:
        Authentication period used for detection-latency accounting (the
        paper's 6-second analysis window).
    seed:
        Master seed; every campaign derives its own stream, so a rerun —
        through any door — crafts identical windows.
    """

    n_attackers: int = 6
    attack_windows_per_context: int = 4
    mimicry_strength: float = 0.85
    n_replays: int = 2
    window_seconds: float = 6.0
    seed: RandomState = 101

    def __post_init__(self) -> None:
        if self.n_attackers < 1:
            raise ValueError(f"n_attackers must be >= 1, got {self.n_attackers}")
        check_positive(self.attack_windows_per_context, "attack_windows_per_context")
        check_in_range(self.mimicry_strength, "mimicry_strength", 0.0, 1.0)
        if self.n_replays < 1:
            raise ValueError(f"n_replays must be >= 1, got {self.n_replays}")
        check_positive(self.window_seconds, "window_seconds")


class AttackFleet:
    """Runs adversarial campaigns against an enrolled fleet's service.

    Each attacker is provisioned as a distinct ``data:write``-only caller
    in the fleet's :class:`~repro.service.envelope.CallerRegistry`, so
    the hostile traffic lands on its own per-caller telemetry counters —
    the attribution recipe in ``docs/attacks.md``.  Campaigns are
    deterministic in the config seed: running the same campaign through
    the in-process envelope channel, a JSON
    :class:`~repro.service.transport.ServiceClient` and a binary-codec
    client yields bit-for-bit identical :class:`AttackFleetReport`\\ s.

    Parameters
    ----------
    fleet:
        An enrolled-and-trained :class:`~repro.service.fleet.FleetSimulator`
        (``build_users()`` + ``enroll_fleet()`` already run).
    config:
        Campaign knobs (defaults when omitted).
    """

    #: Campaign names, in execution order.
    CAMPAIGNS = ("zero-effort", "mimicry", "replay", "stolen-device")

    def __init__(
        self, fleet: FleetSimulator, config: AttackFleetConfig | None = None
    ) -> None:
        self.fleet = fleet
        self.config = config or AttackFleetConfig()
        self._keys: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # caller provisioning
    # ------------------------------------------------------------------ #

    @staticmethod
    def caller_id(campaign: str, index: int) -> str:
        """The registry caller id of attacker *index* in *campaign*."""
        return f"attacker-{campaign}-{index:02d}"

    def provision(self) -> dict[str, str]:
        """Register every attacker as its own caller; returns their keys.

        Idempotent: already-provisioned callers keep their credential, so
        the same campaign can run through several transport doors without
        re-registering (per-caller counters then accumulate across doors).
        A caller registered by an *earlier* harness on the same fleet is
        taken over with a key rotation — its telemetry counters survive.
        """
        for campaign in self.CAMPAIGNS:
            for index in range(self.config.n_attackers):
                caller = self.caller_id(campaign, index)
                if caller in self._keys:
                    continue
                try:
                    key = self.fleet.callers.register(caller, (SCOPE_DATA_WRITE,))
                except ValueError:
                    key = self.fleet.callers.rotate_key(caller)
                self._keys[caller] = key
        return dict(self._keys)

    # ------------------------------------------------------------------ #
    # crafting
    # ------------------------------------------------------------------ #

    def _craft(
        self, campaign: str, index: int, rng: np.random.Generator
    ) -> FleetAttack:
        """Craft attacker *index*'s attempt for *campaign* (rng-ordered)."""
        config = self.config
        fleet_config = self.fleet.config
        users = self.fleet.users
        victim = users[index % len(users)]
        n = config.attack_windows_per_context
        noise = fleet_config.window_noise
        names = self.fleet.feature_names
        omit = fleet_config.server_side_contexts
        if campaign == "zero-effort":
            # An outsider: his own cluster, never enrolled, own gait
            # offset — the weakest adversary, the FAR baseline.
            base = rng.normal(0.0, fleet_config.user_spread, size=len(names))
            offset = rng.normal(0.0, 1.0, size=len(names))
            outsider = SimulatedUser(
                user_id=f"outsider-{index:02d}",
                context_means={
                    CoarseContext.STATIONARY: base,
                    CoarseContext.MOVING: base + offset,
                },
            )
            return FleetAttack(
                campaign=campaign,
                attacker_id=outsider.user_id,
                victim_id=victim.user_id,
                request=attack_request(
                    outsider, victim.user_id, n, noise, names, rng, omit
                ),
            )
        if campaign == "mimicry":
            shift = 2 if len(users) > 2 else 1
            source = users[(index + shift) % len(users)]
            mimic = mimic_user(source, victim, config.mimicry_strength)
            return FleetAttack(
                campaign=campaign,
                attacker_id=source.user_id,
                victim_id=victim.user_id,
                request=attack_request(
                    mimic, victim.user_id, n, noise, names, rng, omit
                ),
            )
        if campaign == "replay":
            return ReplayAttacker().capture(victim, n, noise, names, rng, omit)
        if campaign == "stolen-device":
            source = users[(index + 1) % len(users)]
            return StolenDeviceAttacker(source).craft(
                victim.user_id, n, noise, names, rng, omit
            )
        raise ValueError(
            f"unknown campaign {campaign!r}; known: {self.CAMPAIGNS}"
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _decisions(sealed: SealedResponse, attack: FleetAttack) -> np.ndarray:
        """The per-window accept decisions inside one sealed response."""
        response = sealed.response
        if not isinstance(response, AuthenticationResponse):
            raise RuntimeError(
                f"{attack.campaign} attack on {attack.victim_id!r} did not "
                f"score: the service answered {type(response).__name__} "
                f"({getattr(response, 'code', getattr(response, 'error', ''))})"
            )
        return np.asarray(response.accepted, dtype=bool)

    def _report(
        self,
        attack: FleetAttack,
        caller: str,
        accepted: np.ndarray,
        replays_sent: int = 0,
        replays_flagged: int = 0,
    ) -> AttackerReport:
        n_windows = int(accepted.size)
        n_accepted = int(np.count_nonzero(accepted))
        rejected = np.flatnonzero(~accepted)
        detection_window = int(rejected[0]) if rejected.size else None
        return AttackerReport(
            campaign=attack.campaign,
            caller_id=caller,
            attacker_id=attack.attacker_id,
            victim_id=attack.victim_id,
            n_windows=n_windows,
            n_accepted=n_accepted,
            false_accept_rate=n_accepted / n_windows if n_windows else 0.0,
            detection_window=detection_window,
            detection_time_s=(
                None
                if detection_window is None
                else (detection_window + 1) * self.config.window_seconds
            ),
            replays_sent=replays_sent,
            replays_flagged=replays_flagged,
        )

    def run(
        self,
        channel_for: Callable[[str], Any] | None = None,
        run_id: str = "local",
    ) -> AttackFleetReport:
        """Run every campaign and assemble the per-attacker report.

        Parameters
        ----------
        channel_for:
            ``api_key -> channel`` factory choosing the transport door.
            The channel must expose ``submit_many`` (scoring; rides binary
            frames on a binary-codec client) and ``submit_sealed`` (the
            replay campaign needs the envelope-level ``replayed`` flag).
            Defaults to an in-process
            :class:`~repro.service.envelope.EnvelopeChannel` per attacker.
            Channels exposing ``close()`` are closed after use.
        run_id:
            Namespace for the replay campaign's idempotency keys.  Give
            every door its own run id when running one campaign through
            several doors against the same service — idempotency records
            are (caller, key)-scoped service state, so reusing a key
            across doors would flag the *first* send of the second door.

        Raises
        ------
        RuntimeError
            If the fleet has no users (run ``build_users`` +
            ``enroll_fleet`` first), or a campaign request came back as
            anything but a scored authentication response.
        """
        if not self.fleet.users:
            raise RuntimeError(
                "the fleet has no users; run build_users() and enroll_fleet() "
                "before attacking it"
            )
        keys = self.provision()
        if channel_for is None:
            channel_for = lambda api_key: EnvelopeChannel(  # noqa: E731
                self.fleet.processor, api_key
            )
        reports: list[AttackerReport] = []
        for campaign in self.CAMPAIGNS:
            rng = derive_rng(self.config.seed, "attack-fleet", campaign)
            for index in range(self.config.n_attackers):
                caller = self.caller_id(campaign, index)
                attack = self._craft(campaign, index, rng)
                channel = channel_for(keys[caller])
                try:
                    if campaign == "replay":
                        reports.append(
                            self._run_replay(attack, caller, channel, run_id)
                        )
                    else:
                        responses = channel.submit_many([attack.request])
                        sealed = SealedResponse(
                            response=responses[0], request_id="batch"
                        )
                        accepted = self._decisions(sealed, attack)
                        reports.append(self._report(attack, caller, accepted))
                finally:
                    close = getattr(channel, "close", None)
                    if close is not None:
                        close()
        return AttackFleetReport(
            window_seconds=self.config.window_seconds, attackers=tuple(reports)
        )

    def _run_replay(
        self, attack: FleetAttack, caller: str, channel: Any, run_id: str
    ) -> AttackerReport:
        """First send executes; verbatim resubmissions must come back
        flagged (``replayed=True``) with the recorded decisions."""
        key = f"{run_id}:{caller}"
        first = channel.submit_sealed(attack.request, idempotency_key=key)
        accepted = self._decisions(first, attack)
        flagged = 0
        for _ in range(self.config.n_replays):
            replayed = channel.submit_sealed(attack.request, idempotency_key=key)
            again = self._decisions(replayed, attack)
            if replayed.replayed and bool(np.array_equal(again, accepted)):
                flagged += 1
        return self._report(
            attack,
            caller,
            accepted,
            replays_sent=self.config.n_replays,
            replays_flagged=flagged,
        )
