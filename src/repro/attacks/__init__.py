"""Attack substrate: zero-effort and mimicry attackers plus their evaluation.

Models the paper's threat model (Section III) and the masquerading-attack
study (Section V-G): an adversary with physical access to the phone either
uses it with his own behaviour (zero-effort attack) or watches a recording of
the victim and imitates the victim's behaviour as well as he can (mimicry
attack).
"""

from repro.attacks.attackers import (
    ZeroEffortAttacker,
    MimicryAttacker,
    AttackSession,
)
from repro.attacks.evaluation import (
    DetectionTimeline,
    evaluate_detection_time,
    escape_probability,
    time_to_detect_all,
)

__all__ = [
    "ZeroEffortAttacker",
    "MimicryAttacker",
    "AttackSession",
    "DetectionTimeline",
    "evaluate_detection_time",
    "escape_probability",
    "time_to_detect_all",
]
