"""Attack substrate: sensor-level attackers plus the fleet-scale harness.

Models the paper's threat model (Section III) and the masquerading-attack
study (Section V-G): an adversary with physical access to the phone either
uses it with his own behaviour (zero-effort attack) or watches a recording of
the victim and imitates the victim's behaviour as well as he can (mimicry
attack).

Two layers:

* :mod:`repro.attacks.attackers` / :mod:`repro.attacks.evaluation` — the
  paper-scale study: sensor-stream attackers against one user's in-process
  pipeline, with detection-latency evaluation;
* :mod:`repro.attacks.fleet` — the serving-path study: replay and
  stolen-device adversaries plus the :class:`~repro.attacks.fleet.AttackFleet`
  campaign driver, submitting crafted requests through the v2 envelope API
  (in process, JSON HTTP, or binary frames) with per-caller attribution.
"""

from repro.attacks.attackers import (
    ZeroEffortAttacker,
    MimicryAttacker,
    AttackSession,
)
from repro.attacks.evaluation import (
    DetectionTimeline,
    evaluate_detection_time,
    escape_probability,
    time_to_detect_all,
)
from repro.attacks.fleet import (
    AttackFleet,
    AttackFleetConfig,
    AttackFleetReport,
    AttackerReport,
    FleetAttack,
    ReplayAttacker,
    StolenDeviceAttacker,
    attack_request,
    mimic_user,
)

__all__ = [
    "ZeroEffortAttacker",
    "MimicryAttacker",
    "AttackSession",
    "DetectionTimeline",
    "evaluate_detection_time",
    "escape_probability",
    "time_to_detect_all",
    "AttackFleet",
    "AttackFleetConfig",
    "AttackFleetReport",
    "AttackerReport",
    "FleetAttack",
    "ReplayAttacker",
    "StolenDeviceAttacker",
    "attack_request",
    "mimic_user",
]
